package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// SchemaVersion identifies the JSON layout of RunMetrics and
// BatchMetrics. Bump it on any breaking change; the golden tests pin
// the layout so accidental drift fails CI.
const SchemaVersion = 1

// StateCycles is the per-state cycle breakdown of one timeline. Field
// order and JSON keys are part of the stable schema.
type StateCycles struct {
	Running       int64 `json:"running"`
	Switching     int64 `json:"context_switching"`
	StalledMem    int64 `json:"stalled_on_memory"`
	CacheHit      int64 `json:"cache_hit_continue"`
	Idle          int64 `json:"idle"`
	FaultRecovery int64 `json:"fault_recovery"`
}

// Total sums the states; for a settled timeline it equals the cycle
// count (times the processor count, for a machine-wide sum).
func (s *StateCycles) Total() int64 {
	return s.Running + s.Switching + s.StalledMem + s.CacheHit + s.Idle + s.FaultRecovery
}

// Busy is the useful-work share: running plus cache-hit-continue.
func (s *StateCycles) Busy() int64 { return s.Running + s.CacheHit }

// accumulate adds o into s.
func (s *StateCycles) accumulate(o *StateCycles) {
	s.Running += o.Running
	s.Switching += o.Switching
	s.StalledMem += o.StalledMem
	s.CacheHit += o.CacheHit
	s.Idle += o.Idle
	s.FaultRecovery += o.FaultRecovery
}

// Breakdown renders the states as "running=... switching=..." with
// utilization percentages of the given total (0 skips percentages).
func (s *StateCycles) Breakdown(total int64) string {
	var b strings.Builder
	parts := []struct {
		name string
		v    int64
	}{
		{"running", s.Running}, {"switching", s.Switching},
		{"stalled-mem", s.StalledMem}, {"cache-hit", s.CacheHit},
		{"idle", s.Idle}, {"fault-recovery", s.FaultRecovery},
	}
	for i, p := range parts {
		if i > 0 {
			b.WriteByte(' ')
		}
		if total > 0 {
			fmt.Fprintf(&b, "%s=%d(%.1f%%)", p.name, p.v, 100*float64(p.v)/float64(total))
		} else {
			fmt.Fprintf(&b, "%s=%d", p.name, p.v)
		}
	}
	return b.String()
}

// ThreadMetrics is one thread context's settled timeline.
type ThreadMetrics struct {
	Thread int         `json:"thread"`
	States StateCycles `json:"states"`
}

// ProcMetrics is one processor's settled timeline plus its threads'.
type ProcMetrics struct {
	Proc    int             `json:"proc"`
	States  StateCycles     `json:"states"`
	Threads []ThreadMetrics `json:"threads"`
}

// Counters are the run-level event counts the observability layer
// tracks alongside the timelines.
type Counters struct {
	// Instrs is the number of instructions executed.
	Instrs int64 `json:"instrs"`
	// SwitchesTaken / SwitchesSkipped / SwitchesForced mirror the
	// context-switch accounting (taken, skipped-on-hit, run-limit
	// forced).
	SwitchesTaken   int64 `json:"switches_taken"`
	SwitchesSkipped int64 `json:"switches_skipped"`
	SwitchesForced  int64 `json:"switches_forced"`
	// RunLengthMean / RunLengthMax summarize the busy-cycles-between-
	// switches distribution (zero unless collected).
	RunLengthMean float64 `json:"run_length_mean"`
	RunLengthMax  int64   `json:"run_length_max"`
	// NetRoundTrips counts shared-memory round trips (loads and
	// fetch-and-adds); NetMessages counts all network messages.
	NetRoundTrips int64 `json:"net_round_trips"`
	NetMessages   int64 `json:"net_messages"`
	// FaultRetries / FaultTimeouts mirror the recovery protocol's
	// counters (zero on a clean network).
	FaultRetries  int64 `json:"fault_retries"`
	FaultTimeouts int64 `json:"fault_timeouts"`
}

// accumulate adds o into c. Run-length summaries are combined by
// keeping the max and a switch-weighted mean.
func (c *Counters) accumulate(o *Counters, selfW, oW int64) {
	if w := selfW + oW; w > 0 {
		c.RunLengthMean = (c.RunLengthMean*float64(selfW) + o.RunLengthMean*float64(oW)) / float64(w)
	}
	if o.RunLengthMax > c.RunLengthMax {
		c.RunLengthMax = o.RunLengthMax
	}
	c.Instrs += o.Instrs
	c.SwitchesTaken += o.SwitchesTaken
	c.SwitchesSkipped += o.SwitchesSkipped
	c.SwitchesForced += o.SwitchesForced
	c.NetRoundTrips += o.NetRoundTrips
	c.NetMessages += o.NetMessages
	c.FaultRetries += o.FaultRetries
	c.FaultTimeouts += o.FaultTimeouts
}

// RunMetrics is the observability record of one simulation run: the
// settled per-processor/per-thread timelines plus event counters. The
// JSON layout is the stable schema emitted by the -metrics flags.
type RunMetrics struct {
	Schema int `json:"schema"`
	// Program names the simulated program (the app kernel).
	Program string `json:"program"`
	// Model is the context-switch policy's name.
	Model string `json:"model"`
	// NumProcs/NumThreads echo the configuration; Cycles is the run
	// length the state totals are measured against.
	NumProcs   int   `json:"num_procs"`
	NumThreads int   `json:"num_threads"`
	Cycles     int64 `json:"cycles"`
	// States is the machine-wide sum over processors: its Total is
	// exactly NumProcs x Cycles.
	States StateCycles `json:"states"`
	// Procs holds the per-processor (and nested per-thread) timelines.
	Procs    []ProcMetrics `json:"per_proc"`
	Counters Counters      `json:"counters"`
}

// EngineMetrics describes the experiment engine's own work: how many
// simulations actually executed and how many were served from the
// session memo (including singleflight followers). The counts are
// independent of the worker-pool width.
type EngineMetrics struct {
	Sims     int64 `json:"sims"`
	MemoHits int64 `json:"memo_hits"`
}

// BatchMetrics aggregates the RunMetrics of every simulation a session
// executed, plus the engine's own counters.
type BatchMetrics struct {
	Schema int `json:"schema"`
	// Runs is the number of aggregated simulations (each unique
	// configuration counts once; memo hits share the original run).
	Runs     int           `json:"runs"`
	States   StateCycles   `json:"states"`
	Counters Counters      `json:"counters"`
	Engine   EngineMetrics `json:"engine"`
}

// Batch accumulates RunMetrics into a BatchMetrics. The zero value is
// ready to use; callers serialize Add themselves. Concurrent workers
// finish in nondeterministic order and the run-length mean folds in
// floating point, so Metrics sorts the recorded runs into a canonical
// order before folding: the aggregate is byte-identical regardless of
// arrival order, which the determinism fuzz tests pin across
// worker-pool widths.
type Batch struct {
	runs []*RunMetrics
}

// Add records one run for aggregation.
func (b *Batch) Add(rm *RunMetrics) {
	if rm == nil {
		return
	}
	b.runs = append(b.runs, rm)
}

// runLess orders runs canonically for the fold. Runs tied on every
// compared field are interchangeable in the fold (the only
// order-sensitive quantity is the (RunLengthMean, SwitchesTaken)
// weighted mean, and both appear in the key), so sort instability on
// ties cannot change the result.
func runLess(a, z *RunMetrics) bool {
	switch {
	case a.Program != z.Program:
		return a.Program < z.Program
	case a.Model != z.Model:
		return a.Model < z.Model
	case a.NumProcs != z.NumProcs:
		return a.NumProcs < z.NumProcs
	case a.NumThreads != z.NumThreads:
		return a.NumThreads < z.NumThreads
	case a.Cycles != z.Cycles:
		return a.Cycles < z.Cycles
	case a.Counters.Instrs != z.Counters.Instrs:
		return a.Counters.Instrs < z.Counters.Instrs
	case a.Counters.SwitchesTaken != z.Counters.SwitchesTaken:
		return a.Counters.SwitchesTaken < z.Counters.SwitchesTaken
	default:
		return a.Counters.RunLengthMean < z.Counters.RunLengthMean
	}
}

// Metrics snapshots the aggregate with the engine's counters attached.
func (b *Batch) Metrics(engine EngineMetrics) *BatchMetrics {
	runs := make([]*RunMetrics, len(b.runs))
	copy(runs, b.runs)
	sort.Slice(runs, func(i, j int) bool { return runLess(runs[i], runs[j]) })
	out := BatchMetrics{Schema: SchemaVersion, Engine: engine}
	for _, rm := range runs {
		selfW := out.Counters.SwitchesTaken
		out.Runs++
		out.States.accumulate(&rm.States)
		out.Counters.accumulate(&rm.Counters, selfW, rm.Counters.SwitchesTaken)
	}
	return &out
}

// WriteJSON marshals v (a *RunMetrics or *BatchMetrics) as indented
// JSON with a trailing newline — the on-disk format of the -metrics
// flags and the golden files.
func WriteJSON(w io.Writer, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
