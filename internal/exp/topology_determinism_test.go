package exp_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"mtsim/internal/app"
	"mtsim/internal/apps"
	"mtsim/internal/core"
	"mtsim/internal/machine"
	"mtsim/internal/metrics"
	"mtsim/internal/net"
)

// kernelTopoCfg is the small machine the irregular-kernel determinism
// tests run: routed topology, enough threads to interleave, metrics on
// so the byte-identity check covers the full observability record.
func kernelTopoCfg(kind net.TopologyKind) machine.Config {
	cfg := machine.Config{
		Procs: 4, Threads: 2, Model: machine.SwitchOnLoad, Latency: 64,
		CollectRunLengths: true,
	}
	cfg.Topology = net.TopologyConfig{Kind: kind}
	return cfg
}

// TestKernelBatchDeterminismOnTopologies: for every irregular kernel on
// every routed topology, a batch (with duplicate jobs, to exercise the
// memo/singleflight paths) must produce byte-identical result summaries
// and aggregate metrics JSON at worker widths 1, 4 and 16.
func TestKernelBatchDeterminismOnTopologies(t *testing.T) {
	for _, name := range apps.IrregularNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			a := apps.MustNew(name, app.Quick)
			var jobs []core.Job
			for _, kind := range []net.TopologyKind{net.TopoMesh, net.TopoFatTree, net.TopoDragonfly} {
				jobs = append(jobs, core.Job{App: a, Cfg: kernelTopoCfg(kind)})
			}
			jobs = append(jobs, jobs[0]) // duplicate: memo path

			snapshot := func(workers int) string {
				s := core.NewSession()
				s.Workers = workers
				s.CollectMetrics = true
				results, err := s.RunBatch(jobs)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				var buf bytes.Buffer
				for _, r := range results {
					fmt.Fprintln(&buf, r.Summary())
				}
				if err := metrics.WriteJSON(&buf, s.Metrics()); err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				return buf.String()
			}

			base := snapshot(1)
			for _, w := range []int{4, 16} {
				if got := snapshot(w); got != base {
					t.Errorf("workers=%d output differs from workers=1\n--- workers=1 ---\n%s\n--- workers=%d ---\n%s",
						w, base, w, got)
				}
			}
		})
	}
}

// TestKernelCheckpointResumeOnMesh: pausing an irregular kernel on the
// mesh topology, snapshotting (link queues included), and resuming in a
// fresh session must reproduce the uninterrupted run's Result byte for
// byte — the link-queue state is part of the v3 snapshot payload.
func TestKernelCheckpointResumeOnMesh(t *testing.T) {
	ctx := context.Background()
	for _, name := range apps.IrregularNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			a := apps.MustNew(name, app.Quick)
			cfg := kernelTopoCfg(net.TopoMesh)

			want, err := a.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			interval := want.Cycles / 7 // several pauses, never on a boundary
			if interval < 1 {
				interval = 1
			}

			var mid []byte
			s1 := core.NewSession()
			got, err := s1.RunCheckpointedContext(ctx, a, cfg, core.CheckpointConfig{
				Interval: interval,
				OnCheckpoint: func(cycle int64, snap []byte) error {
					if mid == nil && cycle >= want.Cycles/2 {
						mid = append([]byte(nil), snap...)
					}
					return nil
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			assertSameResult(t, "checkpointed", want, got)
			if mid == nil {
				t.Fatal("no mid-run snapshot captured")
			}

			s2 := core.NewSession()
			resumed, err := s2.RunCheckpointedContext(ctx, a, cfg, core.CheckpointConfig{
				Interval: interval, Resume: mid,
			})
			if err != nil {
				t.Fatal(err)
			}
			assertSameResult(t, "resumed", want, resumed)
		})
	}
}

// assertSameResult compares two run results byte-for-byte via their
// JSON encoding.
func assertSameResult(t *testing.T, label string, want, got *machine.Result) {
	t.Helper()
	wj, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	gj, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(wj) != string(gj) {
		t.Errorf("%s result differs from uninterrupted run\n--- want ---\n%s\n--- got ---\n%s", label, wj, gj)
	}
}
