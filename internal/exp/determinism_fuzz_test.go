package exp_test

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"mtsim/internal/app"
	"mtsim/internal/apps"
	"mtsim/internal/core"
	"mtsim/internal/machine"
	"mtsim/internal/metrics"
	"mtsim/internal/net"
)

// FuzzRunBatchDeterminism fuzzes the engine's byte-identical-at-any-
// width contract over the inputs most likely to break it: the fault
// seed (per-access rng streams), the execution model (different
// scheduler paths), and the fault rate (retry/backoff protocol depth).
// For every fuzzed triple, a batch with duplicate jobs must produce
// the same result summaries AND the same aggregate metrics JSON at
// worker widths 1, 4 and 16 — the metrics half is the hard part, since
// aggregation order follows completion order.
func FuzzRunBatchDeterminism(f *testing.F) {
	f.Add(uint64(1), uint8(2), 0.05)
	f.Add(uint64(42), uint8(4), 0.0)
	f.Add(uint64(7), uint8(6), 0.3)
	f.Fuzz(func(t *testing.T, seed uint64, modelIdx uint8, rate float64) {
		// Clamp the fuzzed inputs into the valid domain rather than
		// rejecting them, so every input exercises the engine. Skip
		// Ideal (model 0): it has no latency to hide, hence no faults.
		model := machine.Model(1 + int(modelIdx)%(machine.NumModels-1))
		if math.IsNaN(rate) || math.IsInf(rate, 0) || rate < 0 {
			rate = 0
		}
		if rate > 0.3 {
			rate = 0.3
		}

		a := apps.MustNew("sor", app.Quick)
		cfg := machine.Config{
			Procs: 2, Threads: 2, Model: model, Latency: 16,
			Faults: net.FaultConfig{
				Enabled: true, Seed: seed,
				DropRate: rate / 2, DelayRate: rate,
			},
		}
		vary := cfg
		vary.Latency = 32
		// Duplicates exercise the memo/singleflight paths, whose metrics
		// must still aggregate identically at every width.
		jobs := []core.Job{{App: a, Cfg: cfg}, {App: a, Cfg: vary}, {App: a, Cfg: cfg}}

		snapshot := func(workers int) string {
			s := core.NewSession()
			s.Workers = workers
			s.CollectMetrics = true
			results, err := s.RunBatch(jobs)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			var buf bytes.Buffer
			for _, r := range results {
				fmt.Fprintln(&buf, r.Summary())
			}
			if err := metrics.WriteJSON(&buf, s.Metrics()); err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			return buf.String()
		}

		base := snapshot(1)
		for _, w := range []int{4, 16} {
			if got := snapshot(w); got != base {
				t.Errorf("seed=%d model=%s rate=%g: workers=%d output differs from workers=1\n--- workers=1 ---\n%s\n--- workers=%d ---\n%s",
					seed, model, rate, w, base, w, got)
			}
		}
	})
}
