package exp

import (
	"fmt"

	"mtsim/internal/app"
	"mtsim/internal/core"
	"mtsim/internal/machine"
	"mtsim/internal/stats"
)

// appPkg shortens the application type within this file.
type appPkg = app.App

// Table1 reproduces the application inventory: program size, problem
// size, and single-processor (zero latency) cycle counts.
func Table1(o *Options) error {
	t := &stats.Table{
		Title:  fmt.Sprintf("Table 1: parallel applications (%s scale)", o.Scale),
		Header: []string{"application", "instrs", "cycles", "shared ld/st", "description & problem size"},
	}
	o.prefetch(baselineJobs(o))
	for _, a := range o.Apps() {
		base, err := o.Sess.BaselineContext(o.Context(), a)
		if err != nil {
			return err
		}
		ld, st := a.Raw.CountShared()
		t.AddRow(a.Name,
			fmt.Sprint(len(a.Raw.Instrs)),
			formatCycles(base),
			fmt.Sprintf("%d/%d", ld, st),
			a.Description+" — "+a.Problem)
	}
	t.AddNote("cycles: one ideal (zero latency) processor; instrs: static IR size (the paper's Lines column counted C source)")
	o.printf("%s\n", t)
	return nil
}

func formatCycles(c int64) string {
	switch {
	case c >= 10_000_000:
		return fmt.Sprintf("%.0f M", float64(c)/1e6)
	case c >= 1_000_000:
		return fmt.Sprintf("%.1f M", float64(c)/1e6)
	case c >= 10_000:
		return fmt.Sprintf("%.0f K", float64(c)/1e3)
	default:
		return fmt.Sprint(c)
	}
}

// Table2 reproduces the run-length distributions under switch-on-load:
// percentage of run-lengths per bucket plus the mean (§4.1).
func Table2(o *Options) error {
	t := &stats.Table{
		Title:  fmt.Sprintf("Table 2: switch-on-load run-length distribution (%% of run-lengths, latency %d)", o.Latency),
		Header: append(append([]string{"application"}, bucketHeaders()...), "mean"),
	}
	o.prefetch(runLengthJobs(o, machine.SwitchOnLoad))
	for _, a := range o.Apps() {
		cfg := runLengthCfg(o, a, machine.SwitchOnLoad)
		r, err := o.Sess.RunContext(o.Context(), a, cfg)
		if err != nil {
			return err
		}
		t.AddRow(append([]string{a.Name}, r.RunLengths.Row()...)...)
	}
	t.AddNote("run-length: busy cycles between taken context switches; every shared load switches")
	o.printf("%s\n", t)
	return nil
}

func bucketHeaders() []string {
	h := make([]string, stats.NumBuckets)
	for i := range h {
		h[i] = stats.BucketLabel(i)
	}
	return h
}

// Table3 reproduces the switch-on-load multithreading requirements: the
// level needed to reach each target efficiency at the application's table
// processor count.
func Table3(o *Options) error {
	return mtTable(o, "Table 3", machine.SwitchOnLoad, nil)
}

// Table4 reproduces the post-grouping run-length distributions plus the
// dynamic grouping factor (loads per taken switch).
func Table4(o *Options) error {
	t := &stats.Table{
		Title:  fmt.Sprintf("Table 4: explicit-switch (grouped) run-length distribution (%% of run-lengths, latency %d)", o.Latency),
		Header: append(append([]string{"application"}, bucketHeaders()...), "mean", "grouping"),
	}
	o.prefetch(runLengthJobs(o, machine.ExplicitSwitch))
	for _, a := range o.Apps() {
		cfg := runLengthCfg(o, a, machine.ExplicitSwitch)
		r, err := o.Sess.RunContext(o.Context(), a, cfg)
		if err != nil {
			return err
		}
		row := append([]string{a.Name}, r.RunLengths.Row()...)
		row = append(row, fmt.Sprintf("%.2f", r.GroupingFactor()))
		t.AddRow(row...)
	}
	t.AddNote("grouping: dynamic shared loads per taken context switch")
	o.printf("%s\n", t)
	return nil
}

// Table5 reproduces the explicit-switch multithreading requirements and
// the code-reorganization penalty (grouped vs raw cycles on the ideal
// machine, §5.1).
func Table5(o *Options) error {
	// The penalty runs bypass the session memo (the grouped program under
	// a raw-code model), so precompute every cell on the worker pool
	// instead of paying for them one at a time inside the render loop.
	set := o.Apps()
	cells := make([]string, len(set))
	err := o.forEach(len(set), func(i int) error {
		a := appHandle{a: set[i]}
		raw, err := o.Sess.RunContext(o.Context(), a.a, machine.Config{Procs: 1, Threads: 1, Model: machine.Ideal})
		if err != nil {
			return err
		}
		grouped, err := machineRunGrouped(o, a, machine.Config{Procs: 1, Threads: 1, Model: machine.Ideal})
		if err != nil {
			return err
		}
		if raw.Cycles <= 0 {
			// A degenerate baseline makes the penalty undefined; render
			// the paper's blank rather than an Inf/NaN percentage.
			cells[i] = "-"
			return nil
		}
		cells[i] = fmt.Sprintf("%+.1f%%", 100*(float64(grouped.Cycles)/float64(raw.Cycles)-1))
		return nil
	})
	if err != nil {
		return err
	}
	byName := make(map[string]string, len(set))
	for i, a := range set {
		byName[a.Name] = cells[i]
	}
	penalty := func(a appHandle) (string, error) { return byName[a.a.Name], nil }
	return mtTable(o, "Table 5", machine.ExplicitSwitch, &extraCol{name: "penalty", f: penalty})
}

// Table6 reproduces the §5.2 inter-block grouping estimate for the two
// applications whose intra-block grouping disappointed: the one-line
// 32-word window hit rate, the revised grouping factor, and the revised
// multithreading requirements.
func Table6(o *Options) error {
	t := &stats.Table{
		Title: fmt.Sprintf("Table 6: inter-block grouping estimate (1-line 32-word window, latency %d)", o.Latency),
		Header: append(append([]string{"application", "window-hits", "grouping", "grouping+win"},
			effHeaders()...), "best"),
	}
	var warm []core.Job
	for _, name := range []string{"ugray", "locus"} {
		if a, err := o.App(name); err == nil {
			plain := runLengthCfg(o, a, machine.ExplicitSwitch)
			win := plain
			win.GroupWindow = true
			warm = append(warm, core.Job{App: a, Cfg: plain}, core.Job{App: a, Cfg: win})
		}
	}
	o.prefetch(warm)
	for _, name := range []string{"ugray", "locus"} {
		a, err := o.App(name)
		if err != nil {
			return err
		}
		base := runLengthCfg(o, a, machine.ExplicitSwitch)
		plain, err := o.Sess.RunContext(o.Context(), a, base)
		if err != nil {
			return err
		}
		win := base
		win.GroupWindow = true
		wres, err := o.Sess.RunContext(o.Context(), a, win)
		if err != nil {
			return err
		}
		search := machine.Config{
			Procs: a.TableProcs, Model: machine.ExplicitSwitch,
			Latency: o.Latency, GroupWindow: true,
		}
		levels, best, bestMT, err := o.Sess.MTSearchContext(o.Context(), a, search, core.EffTargets, o.MaxMT)
		if err != nil {
			return err
		}
		row := []string{
			a.Name,
			fmt.Sprintf("%.0f%%", 100*wres.WindowHitRate()),
			fmt.Sprintf("%.2f", plain.GroupingFactor()),
			fmt.Sprintf("%.2f", wres.GroupingFactor()),
		}
		row = append(row, core.FormatLevels(levels)...)
		row = append(row, fmt.Sprintf("%.2f@%d", best, bestMT))
		t.AddRow(row...)
	}
	t.AddNote("a window hit means the load shares a 32-word line with the preceding reference and could have been issued with it")
	o.printf("%s\n", t)
	return nil
}

// Table7 reproduces the §6.1 bandwidth study: per-processor network
// demand in bits per cycle without a cache (explicit-switch) and with one
// (conditional-switch), plus cache hit rates. Spin traffic is excluded,
// as in the paper's footnote 2.
func Table7(o *Options) error {
	const mt = 6
	t := &stats.Table{
		Title:  fmt.Sprintf("Table 7: network bandwidth, %d threads/proc, latency %d (spin traffic excluded)", mt, o.Latency),
		Header: []string{"application", "procs", "uncached b/cyc", "hit-rate", "cached b/cyc", "b/cyc ratio", "traffic ratio", "speedup"},
	}
	var warm []core.Job
	for _, a := range o.Apps() {
		for _, m := range []machine.Model{machine.ExplicitSwitch, machine.ConditionalSwitch} {
			warm = append(warm, core.Job{App: a, Cfg: machine.Config{
				Procs: a.TableProcs, Threads: mt,
				Model: m, Latency: o.Latency,
			}})
		}
	}
	o.prefetch(warm)
	for _, a := range o.Apps() {
		un, err := o.Sess.RunContext(o.Context(), a, machine.Config{
			Procs: a.TableProcs, Threads: mt,
			Model: machine.ExplicitSwitch, Latency: o.Latency,
		})
		if err != nil {
			return err
		}
		ca, err := o.Sess.RunContext(o.Context(), a, machine.Config{
			Procs: a.TableProcs, Threads: mt,
			Model: machine.ConditionalSwitch, Latency: o.Latency,
		})
		if err != nil {
			return err
		}
		ub, cb := un.BitsPerCycle(), ca.BitsPerCycle()
		red, traf := "-", "-"
		if cb > 0 {
			red = fmt.Sprintf("%.1fx", ub/cb)
		}
		if cbits := ca.Traffic.Bits(); cbits > 0 {
			traf = fmt.Sprintf("%.1fx", float64(un.Traffic.Bits())/float64(cbits))
		}
		speedup := "-"
		if ca.Cycles > 0 {
			speedup = fmt.Sprintf("%.2fx", float64(un.Cycles)/float64(ca.Cycles))
		}
		t.AddRow(a.Name, fmt.Sprint(a.TableProcs),
			fmt.Sprintf("%.2f", ub),
			fmt.Sprintf("%.2f", ca.CacheHitRate()),
			fmt.Sprintf("%.2f", cb),
			red, traf, speedup)
	}
	t.AddNote("bits/cycle per processor, forward + return traffic, incl. headers, acks, invalidations and write-backs")
	t.AddNote("'traffic ratio' compares total bits moved; per-cycle demand can rise simply because the cached run finishes faster")
	o.printf("%s\n", t)
	return nil
}

// Table8 reproduces the conditional-switch multithreading requirements
// (cache + grouped code + 200-cycle run limit).
func Table8(o *Options) error {
	return mtTable(o, "Table 8", machine.ConditionalSwitch, nil)
}

// --- prefetch job lists shared by the table generators ---

// baselineCfg is the ideal single-processor configuration every
// efficiency number is measured against.
func baselineCfg() machine.Config {
	return machine.Config{Procs: 1, Threads: 1, Model: machine.Ideal}
}

// baselineJobs lists one baseline run per application.
func baselineJobs(o *Options) []core.Job {
	jobs := make([]core.Job, 0, len(o.Apps()))
	for _, a := range o.Apps() {
		jobs = append(jobs, core.Job{App: a, Cfg: baselineCfg()})
	}
	return jobs
}

// runLengthCfg is the 4-thread table-processor configuration the
// run-length distribution tables (2, 4 and 6) share.
func runLengthCfg(o *Options, a *appPkg, model machine.Model) machine.Config {
	return machine.Config{
		Procs: a.TableProcs, Threads: 4,
		Model: model, Latency: o.Latency,
		CollectRunLengths: true,
	}
}

// runLengthJobs lists the run-length distribution run for every
// application under one model.
func runLengthJobs(o *Options, model machine.Model) []core.Job {
	jobs := make([]core.Job, 0, len(o.Apps()))
	for _, a := range o.Apps() {
		jobs = append(jobs, core.Job{App: a, Cfg: runLengthCfg(o, a, model)})
	}
	return jobs
}

// --- shared machinery for the multithreading-level tables ---

// appHandle lets per-table extra columns receive the application without
// re-importing the app package type throughout this file.
type appHandle struct{ a *appPkg }

// extraCol is an optional per-application extra column.
type extraCol struct {
	name string
	f    func(appHandle) (string, error)
}

func effHeaders() []string {
	h := make([]string, len(core.EffTargets))
	for i, e := range core.EffTargets {
		h[i] = fmt.Sprintf("%.0f%%", 100*e)
	}
	return h
}

// mtTable renders one "multithreading level needed to achieve X%
// efficiency" table (the shape of Tables 3, 5 and 8).
func mtTable(o *Options, title string, model machine.Model, extra *extraCol) error {
	header := append([]string{"application (procs)"}, effHeaders()...)
	header = append(header, "best")
	if extra != nil {
		header = append(header, extra.name)
	}
	t := &stats.Table{
		Title:  fmt.Sprintf("%s: %s — multithreading level needed for target efficiency (latency %d)", title, model, o.Latency),
		Header: header,
	}
	for _, a := range o.Apps() {
		cfg := machine.Config{Procs: a.TableProcs, Model: model, Latency: o.Latency}
		levels, best, bestMT, err := o.Sess.MTSearchContext(o.Context(), a, cfg, core.EffTargets, o.MaxMT)
		if err != nil {
			return err
		}
		row := []string{fmt.Sprintf("%s (%d)", a.Name, a.TableProcs)}
		row = append(row, core.FormatLevels(levels)...)
		row = append(row, fmt.Sprintf("%.2f@%d", best, bestMT))
		if extra != nil {
			cell, err := extra.f(appHandle{a: a})
			if err != nil {
				return err
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	t.AddNote("'-' : target never reached with <= %d threads/processor", o.MaxMT)
	o.printf("%s\n", t)
	return nil
}

// machineRunGrouped runs the grouped program variant under cfg even for a
// model that normally runs raw code (used by the Table 5 penalty column,
// which compares grouped vs raw on the ideal machine).
func machineRunGrouped(o *Options, a appHandle, cfg machine.Config) (*machine.Result, error) {
	p, _, err := a.a.Grouped()
	if err != nil {
		return nil, err
	}
	return machine.RunChecked(cfg, p, a.a.Init, a.a.Check)
}
