// Package exp regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index). Each generator
// prints a paper-style ASCII table or plot; absolute numbers come from
// our kernels on our simulator, so the point of comparison with the paper
// is the *shape*: who wins, by what rough factor, and where the
// crossovers fall. EXPERIMENTS.md records that comparison.
package exp

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"mtsim/internal/app"
	"mtsim/internal/apps"
	"mtsim/internal/core"
	"mtsim/internal/machine"
	"mtsim/internal/net"
)

// Options configures a generator run. The zero value is not usable; call
// New (or the legacy NewOptions).
type Options struct {
	// Scale selects problem sizes.
	Scale app.Scale
	// Latency is the network round trip (paper: 200).
	Latency int
	// MaxMT caps the multithreading-level searches.
	MaxMT int
	// Out receives the rendered tables.
	Out io.Writer
	// Sess memoizes runs across experiments.
	Sess *core.Session
	// Jobs bounds the worker goroutines used to prefetch simulations and
	// render independent experiments (cmd/experiments -j). Zero or
	// negative means GOMAXPROCS; 1 disables parallelism. Output is
	// byte-identical at every setting: workers only warm the session
	// memo or fill per-experiment buffers that are emitted in order.
	Jobs int
	// FaultSeed seeds the robustness ablation's deterministic fault
	// streams (cmd/experiments -seed).
	FaultSeed uint64
	// FaultRate is the harshest drop/delay probability the robustness
	// ablation sweeps up to (cmd/experiments -faults).
	FaultRate float64
	// FaultJitter is the latency jitter, in cycles, of the ablation's
	// degraded-network column; zero means half the round trip
	// (cmd/experiments -jitter).
	FaultJitter int
	// Kernels names the irregular-workload kernels the topology
	// ablation sweeps (cmd/experiments -kernels). Default: all of
	// apps.IrregularNames.
	Kernels []string
	// Topologies names the interconnect topologies the topology
	// ablation sweeps (cmd/experiments -topologies). Default: every
	// net.TopologyNames entry, constant first.
	Topologies []string

	appSet    []*app.App
	kernelSet []*app.App
	// ctx bounds every simulation and render issued through these
	// options (WithContext); nil means context.Background().
	ctx context.Context
}

// Option configures an Options value at construction (New). Options are
// applied in order, so later ones win.
type Option func(*Options)

// WithScale selects the problem scale (default Quick). The
// multithreading-search cap adjusts with it unless WithMaxMT overrides.
func WithScale(s app.Scale) Option {
	return func(o *Options) {
		o.Scale = s
		o.MaxMT = defaultMaxMT(s)
	}
}

// WithLatency sets the network round trip in cycles (default: the
// paper's 200).
func WithLatency(cycles int) Option {
	return func(o *Options) { o.Latency = cycles }
}

// WithMaxMT caps the multithreading-level searches.
func WithMaxMT(n int) Option {
	return func(o *Options) { o.MaxMT = n }
}

// WithJobs bounds the worker goroutines used to prefetch simulations
// and render independent experiments, for both the options and their
// session (1 disables parallelism; 0 or negative means GOMAXPROCS).
// Output is byte-identical at every width.
func WithJobs(n int) Option {
	return func(o *Options) {
		o.Jobs = n
		o.Sess.Workers = n
	}
}

// WithMetrics turns the session's cycle-accounting collection on or off
// (see core.Session.CollectMetrics); the aggregate is read back with
// SessionMetrics.
func WithMetrics(on bool) Option {
	return func(o *Options) { o.Sess.CollectMetrics = on }
}

// WithContext bounds every simulation and render issued through the
// options: cancellation stops scheduling new work and aborts in-flight
// simulations cooperatively. A completed render is byte-identical to an
// unbounded one.
func WithContext(ctx context.Context) Option {
	return func(o *Options) { o.ctx = ctx }
}

// WithSession substitutes a caller-owned session, sharing its memo (and
// its Workers/CollectMetrics settings) across several options values —
// the serving layer uses this to reuse one session cache across
// requests.
func WithSession(s *core.Session) Option {
	return func(o *Options) { o.Sess = s }
}

// WithFaults parameterizes the robustness ablation: the harshest
// drop/delay rate swept to, the degraded column's latency jitter in
// cycles (0 = half the round trip), and the deterministic stream seed.
func WithFaults(rate float64, jitter int, seed uint64) Option {
	return func(o *Options) {
		o.FaultRate = rate
		o.FaultJitter = jitter
		o.FaultSeed = seed
	}
}

// WithKernels selects the irregular kernels the topology ablation
// sweeps. Names are validated by Options.Validate against the full
// application registry.
func WithKernels(names ...string) Option {
	return func(o *Options) { o.Kernels = names }
}

// WithTopologies selects the interconnect topologies the topology
// ablation sweeps. Names are validated by Options.Validate.
func WithTopologies(names ...string) Option {
	return func(o *Options) { o.Topologies = names }
}

// defaultMaxMT is the search cap a scale defaults to.
func defaultMaxMT(s app.Scale) int {
	if s == app.Quick {
		return 24
	}
	return 48
}

// New returns options writing to out, configured by opts over the paper
// defaults (Quick scale, 200-cycle latency, GOMAXPROCS workers).
func New(out io.Writer, opts ...Option) *Options {
	o := &Options{
		Scale:      app.Quick,
		Latency:    machine.DefaultLatency,
		MaxMT:      defaultMaxMT(app.Quick),
		Out:        out,
		Sess:       core.NewSession(),
		Jobs:       runtime.GOMAXPROCS(0),
		FaultSeed:  1,
		FaultRate:  0.05,
		Kernels:    apps.IrregularNames(),
		Topologies: net.TopologyNames(),
	}
	for _, opt := range opts {
		opt(o)
	}
	return o
}

// NewOptions returns options for a scale with paper defaults.
//
// Deprecated: use New with WithScale; NewOptions remains as a thin
// wrapper so existing callers keep working.
func NewOptions(scale app.Scale, out io.Writer) *Options {
	return New(out, WithScale(scale))
}

// SetJobs sets the worker-pool width for this options value and its
// session (the -j flag).
//
// Deprecated: pass WithJobs to New instead.
func (o *Options) SetJobs(n int) {
	o.Jobs = n
	o.Sess.Workers = n
}

// Context returns the context bounding this options value's work:
// the WithContext value, or context.Background().
func (o *Options) Context() context.Context {
	if o.ctx != nil {
		return o.ctx
	}
	return context.Background()
}

// Validate reports option errors with flag-quality messages. It is the
// one validation path shared by cmd/experiments and the serving layer's
// experiment endpoint, mirroring how machine.Config.Validate serves
// both the library and the server's run decoder.
func (o *Options) Validate() error {
	switch {
	case o.Latency < 1:
		return fmt.Errorf("exp: latency %d: the experiments need a positive round trip", o.Latency)
	case o.MaxMT < 1:
		return fmt.Errorf("exp: maxmt %d: the search cap must be positive", o.MaxMT)
	case o.FaultRate < 0 || o.FaultRate >= 1:
		return fmt.Errorf("exp: fault rate %v: must be in [0, 1)", o.FaultRate)
	case o.FaultJitter < 0:
		return fmt.Errorf("exp: jitter %d: cannot be negative", o.FaultJitter)
	case o.FaultJitter > 0 && o.FaultJitter >= o.Latency:
		return fmt.Errorf("exp: jitter %d: must stay below the round trip (latency %d)", o.FaultJitter, o.Latency)
	case len(o.Kernels) == 0:
		return fmt.Errorf("exp: no kernels selected (have %v)", apps.AllNames())
	case len(o.Topologies) == 0:
		return fmt.Errorf("exp: no topologies selected (have %v)", net.TopologyNames())
	}
	// Name checks up front, with the same flag-quality messages the CLI
	// and the serving layer's experiment decoder surface: a typo fails
	// in microseconds, not after the sweep reaches the bad cell.
	valid := make(map[string]bool)
	for _, n := range apps.AllNames() {
		valid[n] = true
	}
	for _, n := range o.Kernels {
		if !valid[n] {
			return fmt.Errorf("exp: unknown kernel %q (have %v)", n, apps.AllNames())
		}
	}
	for _, n := range o.Topologies {
		if _, err := net.ParseTopology(n); err != nil {
			return fmt.Errorf("exp: %w", err)
		}
	}
	return nil
}

// jobs resolves the effective worker count.
func (o *Options) jobs() int {
	if o.Jobs > 0 {
		return o.Jobs
	}
	return runtime.GOMAXPROCS(0)
}

// prefetch warms the session memo with the given runs on the worker
// pool. Errors are deliberately dropped: the sequential render path
// re-issues the same configurations and reports the first failure at the
// same point a serial run would have. A no-op at Jobs <= 1.
func (o *Options) prefetch(jobs []core.Job) {
	if o.jobs() <= 1 || len(jobs) < 2 {
		return
	}
	_, _ = o.Sess.RunBatchContext(o.Context(), jobs)
}

// forEach calls f(0..n-1) on min(Jobs, n) workers and returns the
// lowest-index error, mirroring where a sequential loop would have
// stopped. Generators use it for work that bypasses the session memo
// (direct machine runs). A canceled options context stops new items and
// fails the undone ones with ctx.Err(), so the lowest-index error still
// matches where a sequential loop would have stopped.
func (o *Options) forEach(n int, f func(i int) error) error {
	ctx := o.Context()
	w := o.jobs()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				errs[i] = f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Rendered runs the given experiments — concurrently when Jobs allows —
// each into its own buffer, and returns the rendered outputs and wall
// times in input order. The outputs are byte-identical to running the
// experiments sequentially: each one owns its buffer, and the shared
// session's singleflight memo returns identical results regardless of
// which experiment simulates a configuration first.
func Rendered(o *Options, exps []*Experiment) ([]string, []time.Duration, error) {
	o.Apps()              // build the app set once, before any worker can race on it
	_, _ = o.KernelApps() // same for the kernel set; bad names resurface in the render
	outs := make([]string, len(exps))
	times := make([]time.Duration, len(exps))
	err := o.forEach(len(exps), func(i int) error {
		start := time.Now()
		var buf strings.Builder
		sub := *o
		sub.Out = &buf
		if err := exps[i].Run(&sub); err != nil {
			return fmt.Errorf("%s: %w", exps[i].ID, err)
		}
		outs[i] = buf.String()
		times[i] = time.Since(start)
		return nil
	})
	return outs, times, err
}

// Apps returns the benchmark set, built once.
func (o *Options) Apps() []*app.App {
	if o.appSet == nil {
		o.appSet = apps.All(o.Scale)
	}
	return o.appSet
}

// KernelApps returns the topology ablation's kernel set, built once
// from the Kernels names at the options scale.
func (o *Options) KernelApps() ([]*app.App, error) {
	if o.kernelSet == nil {
		set := make([]*app.App, 0, len(o.Kernels))
		for _, n := range o.Kernels {
			a, err := apps.New(n, o.Scale)
			if err != nil {
				return nil, err
			}
			set = append(set, a)
		}
		o.kernelSet = set
	}
	return o.kernelSet, nil
}

// App returns one application from the set by name.
func (o *Options) App(name string) (*app.App, error) {
	for _, a := range o.Apps() {
		if a.Name == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("exp: application %q not in set", name)
}

func (o *Options) printf(format string, args ...any) {
	fmt.Fprintf(o.Out, format, args...)
}

// Experiment is one regenerable table or figure.
type Experiment struct {
	// ID is the paper artifact id: "table1".."table8", "figure1".."figure4".
	ID string
	// Title summarizes the artifact.
	Title string
	// Paper states what the paper's version of the artifact showed, for
	// shape comparison.
	Paper string
	// Run regenerates it.
	Run func(o *Options) error
}

// All returns the experiments in paper order.
func All() []*Experiment {
	return []*Experiment{
		{
			ID:    "figure1",
			Title: "Evolution of multithreading models (taxonomy smoke test)",
			Paper: "taxonomy diagram: every model implemented and runnable",
			Run:   Figure1,
		},
		{
			ID:    "table1",
			Title: "Parallel applications",
			Paper: "seven applications, 87M-1353M single-processor cycles",
			Run:   Table1,
		},
		{
			ID:    "figure2",
			Title: "Efficiency on the ideal (zero latency) machine",
			Paper: "near-linear speedup until the fixed problem runs out of parallelism; water erratic under static balancing",
			Run:   Figure2,
		},
		{
			ID:    "table2",
			Title: "Run-length distributions under switch-on-load",
			Paper: "sor/locus/mp3d dominated by 1-2 cycle run-lengths; blkmat exceptionally long",
			Run:   Table2,
		},
		{
			ID:    "figure3",
			Title: "sieve under switch-on-load multithreading (latency 200)",
			Paper: "efficiency rises with multithreading level, ~100% by level 12",
			Run:   Figure3,
		},
		{
			ID:    "table3",
			Title: "Switch-on-load: multithreading level needed for target efficiency",
			Paper: "some applications bounded near 60%; short run-lengths force large levels",
			Run:   Table3,
		},
		{
			ID:    "figure4",
			Title: "sor inner loop before and after grouping",
			Paper: "five loads grouped together with one explicit switch",
			Run:   Figure4,
		},
		{
			ID:    "table4",
			Title: "Run-length distributions under explicit-switch (grouped)",
			Paper: "short run-lengths eliminated; grouping factors up to ~5",
			Run:   Table4,
		},
		{
			ID:    "table5",
			Title: "Explicit-switch: multithreading level for target efficiency + reorganization penalty",
			Paper: "70%+ efficiency with <=14 threads for all but locus; penalty a few percent",
			Run:   Table5,
		},
		{
			ID:    "table6",
			Title: "Inter-block grouping estimate (one-line 32-word window)",
			Paper: "ugray 42% window hits (grouping 1.3 -> 1.9); locus 84% (1.05 -> 6.6)",
			Run:   Table6,
		},
		{
			ID:    "table7",
			Title: "Cache hit rates and network bandwidth (bits/cycle)",
			Paper: "hit rates >90% and bandwidth <4 bits/cycle for all but mp3d",
			Run:   Table7,
		},
		{
			ID:    "table8",
			Title: "Conditional-switch: multithreading level for target efficiency",
			Paper: "80%+ efficiency with 6 or fewer threads",
			Run:   Table8,
		},
	}
}

// ByID returns one experiment, searching the paper artifacts and the
// ablation extensions.
func ByID(id string) (*Experiment, error) {
	var ids []string
	for _, set := range [][]*Experiment{All(), Ablations()} {
		for _, e := range set {
			if e.ID == id {
				return e, nil
			}
			ids = append(ids, e.ID)
		}
	}
	sort.Strings(ids)
	return nil, fmt.Errorf("exp: unknown experiment %q (have %v)", id, ids)
}
