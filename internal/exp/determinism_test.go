package exp_test

import (
	"io"
	"testing"

	"mtsim/internal/app"
	"mtsim/internal/exp"
)

// TestRenderedParallelMatchesSequential is the determinism contract of
// the parallel engine: rendering with many workers must produce output
// byte-identical to -j 1. The experiment subset covers every concurrency
// mechanism — prefetched memo runs (figure1, table2), the grid prefetch
// (figure3), the wave MTSearch plus the parallel penalty column
// (table5), unmemoized direct machine runs (ablation-priority), and the
// seeded fault-injection sweep (ablation-faults), whose fixed-seed
// degraded runs must be bit-reproducible at any worker width.
func TestRenderedParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates experiments twice; not short")
	}
	ids := []string{"figure1", "table2", "figure3", "table5", "ablation-priority", "ablation-faults"}
	exps := make([]*exp.Experiment, len(ids))
	for i, id := range ids {
		e, err := exp.ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		exps[i] = e
	}

	render := func(jobs int) []string {
		o := exp.NewOptions(app.Quick, io.Discard)
		o.MaxMT = 10 // bound the searches; both runs use the same cap
		o.SetJobs(jobs)
		outs, _, err := exp.Rendered(o, exps)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		return outs
	}

	seq := render(1)
	par := render(8)
	for i, id := range ids {
		if seq[i] != par[i] {
			t.Errorf("%s: parallel output differs from sequential\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s",
				id, seq[i], par[i])
		}
		if seq[i] == "" {
			t.Errorf("%s rendered nothing", id)
		}
	}
}
