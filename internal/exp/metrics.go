package exp

import (
	"fmt"
	"io"
	"os"

	"mtsim/internal/metrics"
)

// This file surfaces the cycle-accounting observability layer
// (internal/metrics) at the experiment-engine level: a rendered
// aggregate summary for reports and the stable-schema JSON emitted by
// the -metrics flags of cmd/mtsim and cmd/experiments.

// SessionMetrics snapshots the session's aggregated cycle accounting.
// It is non-empty only when Options.Sess.CollectMetrics was set before
// the experiments ran.
func (o *Options) SessionMetrics() *metrics.BatchMetrics {
	return o.Sess.Metrics()
}

// WriteMetricsSummary renders the aggregate state breakdown and engine
// counters in the report's ASCII style.
func WriteMetricsSummary(w io.Writer, bm *metrics.BatchMetrics) {
	fmt.Fprintf(w, "cycle accounting over %d runs (schema v%d)\n", bm.Runs, bm.Schema)
	total := bm.States.Total()
	fmt.Fprintf(w, "  states: %s\n", bm.States.Breakdown(total))
	fmt.Fprintf(w, "  counters: instrs=%d switches(taken=%d skipped=%d forced=%d) round-trips=%d messages=%d\n",
		bm.Counters.Instrs, bm.Counters.SwitchesTaken, bm.Counters.SwitchesSkipped,
		bm.Counters.SwitchesForced, bm.Counters.NetRoundTrips, bm.Counters.NetMessages)
	if bm.Counters.FaultRetries > 0 || bm.Counters.FaultTimeouts > 0 {
		fmt.Fprintf(w, "  faults: retries=%d timeouts=%d\n",
			bm.Counters.FaultRetries, bm.Counters.FaultTimeouts)
	}
	fmt.Fprintf(w, "  engine: sims=%d memo-hits=%d\n", bm.Engine.Sims, bm.Engine.MemoHits)
}

// WriteMetricsFile writes the aggregate as stable-schema JSON to path
// ("-" means stdout), implementing the cmd-level -metrics flag.
func WriteMetricsFile(path string, bm *metrics.BatchMetrics) error {
	if path == "-" {
		return metrics.WriteJSON(os.Stdout, bm)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("exp: metrics output: %w", err)
	}
	if err := metrics.WriteJSON(f, bm); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
