package exp_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"mtsim/internal/exp"
	"mtsim/internal/metrics"
)

// TestGoldenArtifacts regenerates the deterministic golden set and
// diffs it against the committed files. A legitimate behavior change
// (kernel, optimizer, accounting, schema) is re-pinned with:
//
//	go run ./cmd/gengolden
func TestGoldenArtifacts(t *testing.T) {
	got, err := exp.GoldenSet()
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(got))
	for name := range got {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		want, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			t.Errorf("%s: %v (regenerate with `go run ./cmd/gengolden`)", name, err)
			continue
		}
		if string(got[name]) != string(want) {
			t.Errorf("%s drifted from the committed golden file.\n--- got ---\n%s\n--- want ---\n%s\nIf the change is intended, regenerate with `go run ./cmd/gengolden`.",
				name, got[name], want)
		}
	}
}

// TestGoldenMetricsSchemaShape parses the committed metrics goldens and
// asserts the schema contract independently of exact values: version
// tag, required keys, and the exactness invariant, so a regenerated
// golden can never silently pin a malformed record.
func TestGoldenMetricsSchemaShape(t *testing.T) {
	t.Run("run", func(t *testing.T) {
		data, err := os.ReadFile(filepath.Join("testdata", "run_metrics.golden.json"))
		if err != nil {
			t.Fatal(err)
		}
		var rm metrics.RunMetrics
		if err := json.Unmarshal(data, &rm); err != nil {
			t.Fatal(err)
		}
		if rm.Schema != metrics.SchemaVersion {
			t.Errorf("schema = %d, want %d", rm.Schema, metrics.SchemaVersion)
		}
		if rm.Program == "" || rm.Model == "" || rm.Cycles <= 0 {
			t.Errorf("missing identity fields: %+v", rm)
		}
		if want := rm.Cycles * int64(rm.NumProcs); rm.States.Total() != want {
			t.Errorf("states sum to %d, want %d", rm.States.Total(), want)
		}
		// The golden run is chosen to populate every state.
		s := rm.States
		for _, probe := range []struct {
			name string
			v    int64
		}{
			{"running", s.Running}, {"context_switching", s.Switching},
			{"stalled_on_memory", s.StalledMem}, {"cache_hit_continue", s.CacheHit},
			{"idle", s.Idle}, {"fault_recovery", s.FaultRecovery},
		} {
			if probe.v <= 0 {
				t.Errorf("golden run leaves state %q empty; choose a config that exercises it", probe.name)
			}
		}
		if len(rm.Procs) != rm.NumProcs {
			t.Errorf("per_proc has %d entries, want %d", len(rm.Procs), rm.NumProcs)
		}
	})
	t.Run("batch", func(t *testing.T) {
		data, err := os.ReadFile(filepath.Join("testdata", "batch_metrics.golden.json"))
		if err != nil {
			t.Fatal(err)
		}
		var bm metrics.BatchMetrics
		if err := json.Unmarshal(data, &bm); err != nil {
			t.Fatal(err)
		}
		if bm.Schema != metrics.SchemaVersion {
			t.Errorf("schema = %d, want %d", bm.Schema, metrics.SchemaVersion)
		}
		if bm.Runs <= 0 || bm.Engine.Sims <= 0 {
			t.Errorf("empty aggregate: %+v", bm)
		}
		if bm.States.Total() <= 0 {
			t.Error("aggregate states are empty")
		}
	})
}
