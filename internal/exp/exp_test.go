package exp_test

import (
	"io"
	"strings"
	"testing"

	"mtsim/internal/app"
	"mtsim/internal/exp"
)

func TestRegistryCompleteAndOrdered(t *testing.T) {
	all := exp.All()
	wantIDs := []string{
		"figure1", "table1", "figure2", "table2", "figure3", "table3",
		"figure4", "table4", "table5", "table6", "table7", "table8",
	}
	if len(all) != len(wantIDs) {
		t.Fatalf("have %d experiments, want %d", len(all), len(wantIDs))
	}
	for i, e := range all {
		if e.ID != wantIDs[i] {
			t.Errorf("experiment %d = %s, want %s", i, e.ID, wantIDs[i])
		}
		if e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Errorf("%s: incomplete metadata", e.ID)
		}
	}
}

func TestAblationsRegistered(t *testing.T) {
	abls := exp.Ablations()
	if len(abls) != 9 {
		t.Fatalf("ablations = %d, want 9", len(abls))
	}
	for _, e := range abls {
		if e.ID == "" || e.Run == nil || e.Title == "" {
			t.Errorf("incomplete ablation %+v", e)
		}
		got, err := exp.ByID(e.ID)
		if err != nil || got.ID != e.ID {
			t.Errorf("ByID(%s): %v, %v", e.ID, got, err)
		}
	}
}

func TestAblationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are not short")
	}
	var sb strings.Builder
	o := exp.NewOptions(app.Quick, &sb)
	o.MaxMT = 8 // keep the latency sweep fast for the smoke test
	for _, id := range []string{"ablation-priority", "ablation-jitter", "ablation-switchcost", "ablation-linesize", "ablation-faults"} {
		sb.Reset()
		e, err := exp.ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Run(o); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(sb.String(), "Ablation:") {
			t.Errorf("%s produced no table", id)
		}
	}
}

func TestByID(t *testing.T) {
	e, err := exp.ByID("table5")
	if err != nil || e.ID != "table5" {
		t.Fatalf("ByID(table5) = %v, %v", e, err)
	}
	if _, err := exp.ByID("table99"); err == nil {
		t.Error("unknown id accepted")
	}
}

// TestQuickExperimentsRun regenerates the fast artifacts end to end and
// checks key content markers (the slow MT-search tables are covered by
// the benchmarks and the experiments binary).
func TestQuickExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment regeneration is not short")
	}
	cases := map[string][]string{
		"figure1": {"switch-on-load", "conditional-switch", "grouped"},
		"table1":  {"sieve", "mp3d", "blocked matrix multiply"},
		"table2":  {"application", "mean"},
		"figure4": {"flw.s", "switch", "five-load"},
		"table4":  {"grouping"},
		"table7":  {"hit-rate", "traffic ratio"},
	}
	var sb strings.Builder
	o := exp.NewOptions(app.Quick, &sb)
	for id, markers := range cases {
		sb.Reset()
		e, err := exp.ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Run(o); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		out := sb.String()
		for _, m := range markers {
			if !strings.Contains(out, m) {
				t.Errorf("%s output missing %q:\n%s", id, m, out)
			}
		}
	}
}

func TestWriteReportSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full report regeneration is not short")
	}
	var sb strings.Builder
	o := exp.NewOptions(app.Quick, &sb)
	o.MaxMT = 6 // keep the searches small for the smoke test
	if err := exp.WriteReport(o, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, marker := range []string{
		"# EXPERIMENTS", "## Paper artifacts", "## Ablations",
		"### table5", "### figure2", "### ablation-priority",
		"verified against a host-computed reference",
	} {
		if !strings.Contains(out, marker) {
			t.Errorf("report missing %q", marker)
		}
	}
	// Every experiment needs a section in the report.
	for _, set := range [][]*exp.Experiment{exp.All(), exp.Ablations()} {
		for _, e := range set {
			if !strings.Contains(out, "### "+e.ID) {
				t.Errorf("report missing section for %s", e.ID)
			}
		}
	}
}

func TestOptionsAppLookup(t *testing.T) {
	o := exp.NewOptions(app.Quick, io.Discard)
	if _, err := o.App("sor"); err != nil {
		t.Fatal(err)
	}
	if _, err := o.App("nope"); err == nil {
		t.Error("unknown app accepted")
	}
	if got := len(o.Apps()); got != 7 {
		t.Errorf("app set size = %d", got)
	}
}
