package exp

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// commentary holds, per experiment, the measured-vs-paper reading that
// EXPERIMENTS.md records. The text states which of the paper's claims the
// artifact reproduces and where our kernels' absolute numbers differ and
// why. It is maintained alongside the generators so the report never
// drifts from what the code measures.
var commentary = map[string]string{
	"figure1": `All eight models of the taxonomy run the same workload and order as the
paper's Figure 1 narrative predicts: the ideal machine bounds everything;
switch-on-load/use/explicit behave identically on sieve (whose accesses
are one-at-a-time, so grouping cannot help); the cache-based models beat
them at equal thread counts; conditional-switch skips the large majority
of its switch instructions on cache hits.`,

	"table1": `Seven applications with the paper's parallelization structure. Our
"instrs" column counts static IR instructions where the paper counted C
source lines, and single-processor cycle counts are smaller than the
paper's 87M-1353M because problem sizes are scaled (flag-selectable);
the relative ordering (blkmat compute-heavy, ugray largest code) matches.`,

	"figure2": `Reproduces both Figure 2 observations: efficiency stays near 1 until the
fixed-size problem is divided too finely, and water is the outlier whose
efficiency jumps when the processor count divides the molecule count
(the static-balance effect the paper highlights at 256 vs 343 procs).
blkmat at quick scale runs out of block tasks first, mirroring how the
paper's smaller codes left the linear region earliest.`,

	"table2": `The distribution shapes are the paper's: sor is dominated by 1-2 cycle
run-lengths (paper: 39%+39%; ours concentrates even harder at 1 because
the five stencil loads sit back-to-back), locus and mp3d are short
(means ~6 and ~11), sieve is "fairly constant" (one narrow bucket holds
>90%), and blkmat's mean is an order of magnitude above the rest because
of its private block copies — the paper's "exceptionally high" case.`,

	"figure3": `sieve's efficiency climbs with the multithreading level exactly as in
the paper's Figure 3, with the ideal curve bounding the family and the
curves collapsing at higher processor counts as the fixed problem runs
out of segments. Our sieve saturates near 90% around level 12-19 where
the paper reached ~100% at 12: our counting loop issues a load every
~10 cycles versus their ~18, so slightly more threads are needed —
the 200/(run-length) scaling the paper derives holds.`,

	"table3": `Matches the paper's switch-on-load story: blkmat needs almost no
threads; sieve needs a moderate level; sor is *bounded* well below 60%
by its 1-2 cycle run-lengths no matter the level (the paper's "it is
inevitable that cycles are lost"); ugray/locus/mp3d need very large
levels for mediocre efficiency.`,

	"figure4": `The optimizer reorganizes sor's inner loop exactly as the paper's
Figure 4 shows: the five stencil loads are hoisted together, one explicit
switch follows the group (plus whatever independent work fits before it),
and the uses come after. The static grouping report confirms one
five-load group per loop body.`,

	"table4": `Grouping eliminates the short run-lengths "completely" (sor's 1-2 cycle
share drops from ~80% to ~0) and the dynamic grouping factors line up
with the paper: sor ~5 (its five-load stencil), water ~3 (coordinate
triples), sieve/blkmat 1.0 (nothing to group, as the paper notes), and
locus ~1.02 with a mean run-length of ~7-8 — the paper's "mean run-length
of 8 cycles is still too short" case.`,

	"table5": `The paper's headline table. With grouping, sor reaches 90% with 8
threads and water with 6 (paper: "14 or fewer threads" suffice to
maximize); mp3d reaches 80-90% with 6-9; locus remains run-length-bound
(paper: same); and the reorganization penalty is a few percent for the
apps that group well (sor +3.3%, water +2.0%, blkmat +0.4%) and largest
for the 1-load-group apps (ugray/locus +13-16%) where every load pays a
switch instruction — consistent with the paper's "often just a few
percent ... in all cases overshadowed by the benefits".`,

	"table6": `The §5.2 window experiment. locus hits the window 82-83% of the time —
the paper measured 84% — because its horizontal cost-array walks step
through consecutive addresses; ugray hits ~59% (paper: 42%) through its
face-record fields. The estimated grouping factors roughly double, and
the revised multithreading requirements drop sharply (ugray reaches 80%
at moderate levels where it previously could not) — the paper's
"dramatic potential for compiler based grouping".`,

	"table7": `The §6.1 bandwidth study under write-back directory coherence. Hit
rates are >90% for the spatially-local codes and total traffic falls for
every application (column "traffic ratio"), with sor and water cut by an
order of magnitude; mp3d keeps the lowest hit rate and the highest
absolute demand and benefits least — the paper's "very poor reference
locality ... benefits little from caching". Note the per-cycle demand of
the fast-improving apps can *rise* because the cached run finishes much
sooner; the paper saw the same non-proportionality ("the bandwidth does
not decrease proportionally to the access rate").`,

	"table8": `Conditional-switch: most applications reach 80% efficiency with 6 or
fewer threads (sieve 1, water 1-2, blkmat 2, sor 4, mp3d 5-6), the
paper's headline claim ("execution efficiencies of 80% or better can be
achieved with 6 threads or less"). ugray and locus need more threads
than the paper's versions because our kernels' hit rates sit below their
originals'; their shapes (cache helps, level drops vs Table 5) hold.`,

	"ablation-latency": `Extension. The threads needed for 70% efficiency grow roughly linearly
with the round-trip latency, as the paper's run-length model predicts
(threads ~ latency / run-length + 1). At 400+ cycles — more than twice
the DASH latency the paper compares against in §7 — moderate levels
still reach 70%, supporting the paper's claim that grouping tolerates
"a latency more than twice that used in the DASH study".`,

	"ablation-linesize": `Extension. At constant capacity, longer cache lines keep helping the
spatially-local sor (higher hit rate, lower bandwidth) while mp3d's
scattered cell lookups waste most of each longer line: its bandwidth
roughly triples from 4-cell to 16-cell lines for a few points of hit
rate — the §6.1 "larger message sizes" overhead made explicit.`,

	"ablation-switchcost": `Extension. Charging the switch-on-miss model a realistic pipeline-flush
cost (the paper argues several cycles, §2/§3) costs it several points of
efficiency at high switch rates; at zero cost it matches
switch-on-use-miss timing. This quantifies why the paper's models
identify switches at decode, where they are free.`,

	"ablation-priority": `Extension evaluating the paper's §6.2 suggestion. With neither fix, a
sibling's long cache-hit run strands the woken lock holder and the
serialized lock chain stretches by an order of magnitude. The paper's
200-cycle run limit recovers ~14x. Holder priority *alone* recovers far
less — our finding: it bounds only the holding time, while the
spin-waiting acquirers are still stranded behind sibling runs. Priority
layered on top of the run limit is the best configuration (~16-20x),
so the suggestion is confirmed as an addition to, not a replacement
for, the run limit.`,

	"ablation-network": `Extension implementing the paper's stated future work: per-hop M/D/1
queueing that grows with the injected bandwidth. The feedback loop the
constant-latency model hides appears immediately: the uncached model
saturates the network (peak utilization pinned at the clamp) and needs
many threads for moderate efficiency, while the cached model's frugal
demand keeps the network fast and reaches high efficiency with a few
threads — §6.1's bandwidth argument, closed through the network.`,

	"ablation-mp3dsort": `Extension answering the paper's closing wish for mp3d. Laying particles
out in space-cell order (same kernel, same instruction stream) raises
the hit rate and trims bandwidth and context switches, but only
modestly: the particle records themselves stream through the cache once
per step, and no data layout fixes that. The result supports the
paper's pessimism — mp3d needs algorithmic restructuring, not just
layout, to become cache-friendly.`,

	"ablation-faults": `Extension breaking the §3 perfect-network assumption outright: replies
are dropped, delayed past the requester's timeout, and duplicated, and
a recovery protocol (timeout, NACK-retry with capped exponential
backoff, sequence-number dedup) pays for it in cycles. Every cell still
computes the correct answer — faults cost time, never correctness — and
because the fault schedule is a pure function of (seed, access number),
each degraded run is as deterministic and memoizable as a clean one.
Low rates are nearly free (the protocol's timeouts overlap other
threads' work, the same slack that hides latency); the harsh column
compounds retries with jitter and shows which applications have slack
left to absorb them.`,

	"ablation-jitter": `Extension relaxing the §3 constant-latency assumption with
deterministic per-access deviations (unordered delivery). Applications
with slack in their thread coverage are nearly unaffected; an
application running exactly at its coverage point (sor with 8 threads)
loses efficiency roughly in proportion to the jitter, because replies
no longer return in round-robin order. This bounds how much the paper's
ordered-delivery simplification could flatter its results.`,
}

// WriteReport runs every experiment (paper artifacts and ablations) and
// writes EXPERIMENTS.md-style markdown: the paper's expectation, the
// measured table, and the comparison commentary.
func WriteReport(o *Options, w io.Writer) error {
	fmt.Fprintf(w, `# EXPERIMENTS — paper vs. measured

Reproduction of Boothe & Ranade, "Improved Multithreading Techniques for
Hiding Communication Latency in Multiprocessors" (ISCA 1992).

Every table below was regenerated by this build at the **%s** problem
scale with a %d-cycle round-trip latency; every simulated run was
verified against a host-computed reference before being reported.
Regenerate with:

    go run ./cmd/experiments -scale %s -ablations

Absolute numbers come from our IR kernels on our simulator, so the
comparison with the paper is about *shape*: which model wins, by roughly
what factor, and where the crossovers fall (see DESIGN.md §2 for the
substitution rationale).

`, o.Scale, o.Latency, o.Scale)

	sections := []struct {
		title string
		exps  []*Experiment
	}{
		{"Paper artifacts", All()},
		{"Ablations and extensions", Ablations()},
	}
	for _, sec := range sections {
		fmt.Fprintf(w, "## %s\n\n", sec.title)
		outs, times, err := Rendered(o, sec.exps)
		if err != nil {
			return fmt.Errorf("report: %w", err)
		}
		for i, e := range sec.exps {
			fmt.Fprintf(w, "### %s — %s\n\n", e.ID, e.Title)
			fmt.Fprintf(w, "**Paper:** %s\n\n", e.Paper)
			fmt.Fprintf(w, "```\n%s```\n\n", strings.TrimLeft(outs[i], "\n"))
			if c, ok := commentary[e.ID]; ok {
				fmt.Fprintf(w, "%s\n\n", strings.TrimSpace(c))
			}
			fmt.Fprintf(w, "_regenerated in %v_\n\n", times[i].Round(time.Millisecond))
		}
	}
	return nil
}
