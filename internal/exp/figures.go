package exp

import (
	"fmt"

	"mtsim/internal/core"
	"mtsim/internal/isa"
	"mtsim/internal/machine"
	"mtsim/internal/prog"
	"mtsim/internal/stats"
)

// Figure1 exercises the whole Figure 1 taxonomy: every model runs the
// sieve workload at a small configuration, demonstrating that each policy
// is implemented and behaves sanely (cache models hit, grouped models
// skip switches, and so on).
func Figure1(o *Options) error {
	a, err := o.App("sieve")
	if err != nil {
		return err
	}
	warm := []core.Job{{App: a, Cfg: machine.Config{Procs: 1, Threads: 1, Model: machine.Ideal}}}
	for m := machine.Model(0); int(m) < machine.NumModels; m++ {
		warm = append(warm, core.Job{App: a, Cfg: machine.Config{Procs: 4, Threads: 4, Model: m, Latency: o.Latency}})
	}
	o.prefetch(warm)
	base, err := o.Sess.BaselineContext(o.Context(), a)
	if err != nil {
		return err
	}
	t := &stats.Table{
		Title:  "Figure 1: multithreading model taxonomy (sieve, 4 procs x 4 threads, latency " + fmt.Sprint(o.Latency) + ")",
		Header: []string{"model", "code", "cycles", "efficiency", "switches", "skipped", "hit-rate"},
	}
	for m := machine.Model(0); int(m) < machine.NumModels; m++ {
		cfg := machine.Config{Procs: 4, Threads: 4, Model: m, Latency: o.Latency}
		r, err := o.Sess.RunContext(o.Context(), a, cfg)
		if err != nil {
			return err
		}
		code := "raw"
		if m.UsesGrouping() {
			code = "grouped"
		}
		hit := "-"
		if m.UsesCache() {
			hit = fmt.Sprintf("%.2f", r.CacheHitRate())
		}
		t.AddRow(m.String(), code, fmt.Sprint(r.Cycles),
			fmt.Sprintf("%.3f", r.Efficiency(base)),
			fmt.Sprint(r.TakenSwitches), fmt.Sprint(r.SkippedSwitches), hit)
	}
	t.AddNote("lineage (Figure 1): every-cycle -> on-load -> on-use -> explicit; + cache: on-miss, on-use-miss, conditional")
	o.printf("%s\n", t)
	return nil
}

// Figure2 reproduces the ideal-machine efficiency curves: efficiency vs
// processors with one thread per processor and zero latency. The paper's
// observations to reproduce: efficiency stays high until the fixed-size
// problem is divided too finely, and water is erratic because its static
// load balance depends on divisibility of the molecule count.
func Figure2(o *Options) error {
	maxP := 64
	switch o.Scale {
	case 1:
		maxP = 256
	case 2:
		maxP = 1024
	}
	series := make([]*stats.Series, 0, len(o.Apps()))
	table := &stats.Table{
		Title:  fmt.Sprintf("Figure 2: efficiency on the ideal machine (1 thread/processor, 0 latency, up to %d procs)", maxP),
		Header: []string{"app"},
	}
	var procCounts []int
	for p := 1; p <= maxP; p *= 2 {
		procCounts = append(procCounts, p)
		table.Header = append(table.Header, fmt.Sprint(p))
	}
	var warm []core.Job
	for _, a := range o.Apps() {
		for _, p := range procCounts {
			warm = append(warm, core.Job{App: a, Cfg: machine.Config{Procs: p, Threads: 1, Model: machine.Ideal}})
		}
	}
	if a, err := o.App("water"); err == nil && a.TableProcs > 1 {
		warm = append(warm,
			core.Job{App: a, Cfg: machine.Config{Procs: a.TableProcs, Threads: 1, Model: machine.Ideal}},
			core.Job{App: a, Cfg: machine.Config{Procs: a.TableProcs + 1, Threads: 1, Model: machine.Ideal}})
	}
	o.prefetch(warm)
	for _, a := range o.Apps() {
		s := &stats.Series{Name: a.Name}
		row := []string{a.Name}
		for _, p := range procCounts {
			eff, err := o.Sess.EfficiencyContext(o.Context(), a, machine.Config{Procs: p, Threads: 1, Model: machine.Ideal})
			if err != nil {
				return err
			}
			s.Append(float64(p), eff)
			row = append(row, fmt.Sprintf("%.2f", eff))
		}
		series = append(series, s)
		table.AddRow(row...)
	}
	o.printf("%s\n", table)
	o.printf("%s\n", stats.AsciiPlot("Figure 2 (plot): efficiency vs processors, ideal machine", series, 60, 12))

	// The water divisibility effect, explicitly, with the per-processor
	// imbalance that causes it.
	if a, err := o.App("water"); err == nil {
		tp := a.TableProcs
		if tp > 1 {
			base, err := o.Sess.BaselineContext(o.Context(), a)
			if err != nil {
				return err
			}
			div, err := o.Sess.RunContext(o.Context(), a, machine.Config{Procs: tp, Threads: 1, Model: machine.Ideal})
			if err != nil {
				return err
			}
			off, err := o.Sess.RunContext(o.Context(), a, machine.Config{Procs: tp + 1, Threads: 1, Model: machine.Ideal})
			if err != nil {
				return err
			}
			o.printf("water static balance: %d procs (divides molecules) eff=%.2f imbalance=%.2f"+
				" vs %d procs eff=%.2f imbalance=%.2f\n\n",
				tp, div.Efficiency(base), div.Imbalance(),
				tp+1, off.Efficiency(base), off.Imbalance())
		}
	}
	return nil
}

// Figure3 reproduces the sieve multithreading curves: efficiency vs
// processors at multithreading levels 1..12 under switch-on-load with the
// full 200-cycle latency, plus the ideal curve on top.
func Figure3(o *Options) error {
	a, err := o.App("sieve")
	if err != nil {
		return err
	}
	maxP := 16
	if o.Scale != 0 {
		maxP = 32
	}
	var procCounts []int
	for p := 1; p <= maxP; p *= 2 {
		procCounts = append(procCounts, p)
	}
	levels := []int{1, 2, 4, 6, 8, 10, 12}

	var warm []core.Job
	for _, p := range procCounts {
		warm = append(warm, core.Job{App: a, Cfg: machine.Config{Procs: p, Threads: 1, Model: machine.Ideal}})
	}
	for _, mt := range levels {
		for _, p := range procCounts {
			warm = append(warm, core.Job{App: a, Cfg: machine.Config{
				Procs: p, Threads: mt, Model: machine.SwitchOnLoad, Latency: o.Latency,
			}})
		}
	}
	o.prefetch(warm)

	table := &stats.Table{
		Title:  fmt.Sprintf("Figure 3: sieve efficiency vs processors (switch-on-load, latency %d)", o.Latency),
		Header: []string{"threads/proc"},
	}
	for _, p := range procCounts {
		table.Header = append(table.Header, fmt.Sprintf("%dp", p))
	}
	series := []*stats.Series{}

	ideal := &stats.Series{Name: "ideal"}
	row := []string{"ideal"}
	for _, p := range procCounts {
		eff, err := o.Sess.EfficiencyContext(o.Context(), a, machine.Config{Procs: p, Threads: 1, Model: machine.Ideal})
		if err != nil {
			return err
		}
		ideal.Append(float64(p), eff)
		row = append(row, fmt.Sprintf("%.2f", eff))
	}
	series = append(series, ideal)
	table.AddRow(row...)

	for _, mt := range levels {
		s := &stats.Series{Name: fmt.Sprintf("mt=%d", mt)}
		row := []string{fmt.Sprint(mt)}
		for _, p := range procCounts {
			eff, err := o.Sess.EfficiencyContext(o.Context(), a, machine.Config{
				Procs: p, Threads: mt, Model: machine.SwitchOnLoad, Latency: o.Latency,
			})
			if err != nil {
				return err
			}
			s.Append(float64(p), eff)
			row = append(row, fmt.Sprintf("%.2f", eff))
		}
		series = append(series, s)
		table.AddRow(row...)
	}
	o.printf("%s\n", table)
	o.printf("%s\n", stats.AsciiPlot("Figure 3 (plot): sieve efficiency vs processors", series, 60, 12))
	return nil
}

// Figure4 shows the grouping transformation on sor's inner loop: the raw
// code issues five shared loads one at a time; the reorganized code
// issues the whole group and then performs a single explicit switch.
func Figure4(o *Options) error {
	a, err := o.App("sor")
	if err != nil {
		return err
	}
	grouped, st, err := a.Grouped()
	if err != nil {
		return err
	}
	o.printf("Figure 4: sor inner loop, before and after grouping\n\n")
	o.printf("(a) original order (context switch on every shared load):\n")
	printRange(o, a.Raw, "pt", "row.done")
	o.printf("\n(b) reorganized with grouping (one explicit switch per group):\n")
	printRange(o, grouped, "pt", "row.done")
	o.printf("\noptimizer: %d shared loads, %d switches inserted, static grouping %.2f\n",
		st.SharedLoads, st.Switches, st.StaticGrouping())
	if g := st.GroupSizes[5]; g > 0 {
		o.printf("the five-load stencil group is formed %d time(s) statically\n", g)
	}
	o.printf("\n")
	return nil
}

// printRange disassembles program instructions between two labels.
func printRange(o *Options, p *prog.Program, from, to string) {
	lo, ok1 := p.Labels[from]
	hi, ok2 := p.Labels[to]
	if !ok1 || !ok2 || lo > hi {
		o.printf("  (labels %q..%q not found)\n", from, to)
		return
	}
	for i := lo; i < hi; i++ {
		marker := "  "
		if p.Instrs[i].Op == isa.Switch {
			marker = "=>"
		}
		o.printf("  %s %4d: %s\n", marker, i, p.Instrs[i])
	}
}
