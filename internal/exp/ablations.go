package exp

import (
	"errors"
	"fmt"

	"mtsim/internal/apps/mp3d"
	"mtsim/internal/core"
	"mtsim/internal/machine"
	"mtsim/internal/net"
	"mtsim/internal/par"
	"mtsim/internal/prog"
	"mtsim/internal/stats"
)

// Ablations returns the extension experiments: sweeps over the design
// parameters the paper fixes (latency, cache line size, switch cost) and
// evaluations of the paper's suggested future work (§6.2 critical-region
// priority scheduling) and relaxed assumptions (§3 latency variance).
// They are not paper artifacts; cmd/experiments runs them with
// -ablations.
func Ablations() []*Experiment {
	return []*Experiment{
		{
			ID:    "ablation-latency",
			Title: "Multithreading level needed vs network latency (explicit-switch)",
			Paper: "extension of §7's DASH comparison: grouping tolerates a latency more than twice DASH's at similar efficiency",
			Run:   AblationLatency,
		},
		{
			ID:    "ablation-linesize",
			Title: "Cache line size vs hit rate and bandwidth (conditional-switch)",
			Paper: "extension: the paper fixes one line size; this sweeps it",
			Run:   AblationLineSize,
		},
		{
			ID:    "ablation-switchcost",
			Title: "Context-switch cost vs efficiency (switch-on-miss pipeline flush)",
			Paper: "quantifies §3's argument for opcode-identified (free) switches",
			Run:   AblationSwitchCost,
		},
		{
			ID:    "ablation-priority",
			Title: "Critical-region priority scheduling (the paper's §6.2 suggestion)",
			Paper: "\"room for improvement by using priority scheduling of threads inside critical regions\"",
			Run:   AblationPriority,
		},
		{
			ID:    "ablation-jitter",
			Title: "Latency variance vs efficiency (relaxing §3's constant-latency assumption)",
			Paper: "the paper notes real networks have large latency variance but models a constant",
			Run:   AblationJitter,
		},
		{
			ID:    "ablation-network",
			Title: "Load-dependent network latency (the paper's §6.1 future work)",
			Paper: "\"simulations using realistic networks are needed to fully explore this issue\"",
			Run:   AblationNetwork,
		},
		{
			ID:    "ablation-topology",
			Title: "Irregular kernels on load-dependent interconnect topologies",
			Paper: "extension of §6.1: per-link FIFO queueing on mesh/fat-tree/dragonfly networks replaces the constant round trip",
			Run:   AblationTopology,
		},
		{
			ID:    "ablation-faults",
			Title: "Fault injection: efficiency under an unreliable, jittery network",
			Paper: "extension: the paper's network never loses a reply; this one drops, delays and duplicates them",
			Run:   AblationFaults,
		},
		{
			ID:    "ablation-mp3dsort",
			Title: "mp3d rewritten for locality (the paper's §6.1 wish)",
			Paper: "\"We would be interested in seeing if this application could be rewritten to improve its locality\"",
			Run:   AblationMP3DSort,
		},
	}
}

// AblationLatency sweeps the round-trip latency and reports the
// multithreading level needed for 70% efficiency under explicit-switch.
// The paper's §7 comparison point: DASH studied mp3d at a ~90-cycle
// latency; explicit-switch matches its efficiency while tolerating more
// than twice that.
func AblationLatency(o *Options) error {
	latencies := []int{50, 100, 200, 400, 800}
	t := &stats.Table{
		Title:  "Ablation: threads needed for 70% efficiency vs latency (explicit-switch)",
		Header: []string{"application (procs)"},
	}
	for _, l := range latencies {
		t.Header = append(t.Header, fmt.Sprintf("%dcyc", l))
	}
	for _, name := range []string{"sor", "water", "mp3d"} {
		a, err := o.App(name)
		if err != nil {
			return err
		}
		row := []string{fmt.Sprintf("%s (%d)", a.Name, a.TableProcs)}
		for _, l := range latencies {
			cfg := machine.Config{Procs: a.TableProcs, Model: machine.ExplicitSwitch, Latency: l}
			levels, _, _, err := o.Sess.MTSearchContext(o.Context(), a, cfg, []float64{0.70}, o.MaxMT)
			if err != nil {
				return err
			}
			row = append(row, core.FormatLevels(levels)[0])
		}
		t.AddRow(row...)
	}
	t.AddNote("the level needed grows roughly linearly with latency / mean run-length, as the paper's model predicts")
	o.printf("%s\n", t)
	return nil
}

// AblationLineSize sweeps the cache line size under conditional-switch.
// Longer lines amortize headers for spatially-local codes (sor) but
// waste bandwidth for scattered ones (mp3d) — the paper's §6.1 trade-off
// made explicit.
func AblationLineSize(o *Options) error {
	sizes := []int{1, 2, 4, 8, 16}
	t := &stats.Table{
		Title:  "Ablation: cache line size (cells) vs hit rate and bandwidth (conditional-switch, 6 threads)",
		Header: []string{"application"},
	}
	for _, s := range sizes {
		t.Header = append(t.Header, fmt.Sprintf("hit@%d", s), fmt.Sprintf("b/c@%d", s))
	}
	var warm []core.Job
	for _, name := range []string{"sor", "mp3d"} {
		if a, err := o.App(name); err == nil {
			for _, s := range sizes {
				warm = append(warm, core.Job{App: a, Cfg: lineSizeCfg(o, a, s)})
			}
		}
	}
	o.prefetch(warm)
	for _, name := range []string{"sor", "mp3d"} {
		a, err := o.App(name)
		if err != nil {
			return err
		}
		row := []string{a.Name}
		for _, s := range sizes {
			r, err := o.Sess.RunContext(o.Context(), a, lineSizeCfg(o, a, s))
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%.2f", r.CacheHitRate()), fmt.Sprintf("%.1f", r.BitsPerCycle()))
		}
		t.AddRow(row...)
	}
	t.AddNote("capacity held at 4096 cells; sor gains from longer lines, mp3d's scattered lookups waste them")
	o.printf("%s\n", t)
	return nil
}

// lineSizeCfg is the constant-capacity cache configuration AblationLineSize
// sweeps.
func lineSizeCfg(o *Options, a *appPkg, lineCells int) machine.Config {
	cfg := machine.Config{
		Procs: a.TableProcs, Threads: 6,
		Model: machine.ConditionalSwitch, Latency: o.Latency,
	}
	cfg.Cache.LineCells = lineCells
	cfg.Cache.Lines = 4096 / lineCells // constant capacity
	cfg.Cache.Assoc = 4
	return cfg
}

// AblationSwitchCost sweeps the pipeline-flush cost of switch-on-miss.
// At zero it matches switch-on-use-miss timing; at realistic costs it
// falls behind — the reason the paper's models identify switches at
// decode (§3).
func AblationSwitchCost(o *Options) error {
	costs := []int{-1, 2, 4, 8, 16} // -1 = explicit zero
	a, err := o.App("mp3d")
	if err != nil {
		return err
	}
	base, err := o.Sess.BaselineContext(o.Context(), a)
	if err != nil {
		return err
	}
	t := &stats.Table{
		Title:  fmt.Sprintf("Ablation: switch-on-miss pipeline-flush cost (mp3d, %d procs, 6 threads)", a.TableProcs),
		Header: []string{"switch cost", "cycles", "efficiency", "overhead cycles"},
	}
	var warm []core.Job
	for _, c := range costs {
		warm = append(warm, core.Job{App: a, Cfg: machine.Config{
			Procs: a.TableProcs, Threads: 6,
			Model: machine.SwitchOnMiss, Latency: o.Latency, SwitchCost: c,
		}})
	}
	o.prefetch(warm)
	for _, c := range costs {
		cfg := machine.Config{
			Procs: a.TableProcs, Threads: 6,
			Model: machine.SwitchOnMiss, Latency: o.Latency, SwitchCost: c,
		}
		r, err := o.Sess.RunContext(o.Context(), a, cfg)
		if err != nil {
			return err
		}
		shown := c
		if c < 0 {
			shown = 0
		}
		t.AddRow(fmt.Sprint(shown), fmt.Sprint(r.Cycles),
			fmt.Sprintf("%.3f", r.Efficiency(base)), fmt.Sprint(r.SwitchOverhead))
	}
	t.AddNote("the opcode-identified models (switch-on-load, explicit-switch) pay none of this")
	o.printf("%s\n", t)
	return nil
}

// AblationNetwork replaces the constant 200-cycle round trip with the
// butterfly congestion model: per-hop queueing that grows with the
// bandwidth the program injects. More threads now both hide latency and
// create it, so the bandwidth-frugal cached model keeps climbing while
// the bandwidth-hungry uncached one saturates — the feedback loop the
// paper's constant-latency simplification cannot show.
func AblationNetwork(o *Options) error {
	threads := []int{2, 4, 8, 12, 16}
	congest := net.CongestionConfig{Enabled: true, ChannelBits: 16}
	t := &stats.Table{
		Title:  "Ablation: load-dependent butterfly network (16-bit channels), efficiency vs threads",
		Header: []string{"application / model"},
	}
	for _, th := range threads {
		t.Header = append(t.Header, fmt.Sprintf("%dt", th))
	}
	t.Header = append(t.Header, "peak-util", "final-lat")
	var warm []core.Job
	for _, name := range []string{"sor", "mp3d"} {
		if a, err := o.App(name); err == nil {
			for _, model := range []machine.Model{machine.ExplicitSwitch, machine.ConditionalSwitch} {
				for _, th := range threads {
					warm = append(warm, core.Job{App: a, Cfg: machine.Config{
						Procs: a.TableProcs, Threads: th, Model: model,
						Latency: o.Latency, Congestion: congest,
					}})
				}
			}
		}
	}
	o.prefetch(warm)
	for _, name := range []string{"sor", "mp3d"} {
		a, err := o.App(name)
		if err != nil {
			return err
		}
		base, err := o.Sess.BaselineContext(o.Context(), a)
		if err != nil {
			return err
		}
		for _, model := range []machine.Model{machine.ExplicitSwitch, machine.ConditionalSwitch} {
			row := []string{fmt.Sprintf("%s / %s", a.Name, model)}
			var last *machine.Result
			for _, th := range threads {
				cfg := machine.Config{
					Procs: a.TableProcs, Threads: th, Model: model,
					Latency: o.Latency, Congestion: congest,
				}
				r, err := o.Sess.RunContext(o.Context(), a, cfg)
				if err != nil {
					return err
				}
				row = append(row, fmt.Sprintf("%.2f", r.Efficiency(base)))
				last = r
			}
			row = append(row,
				fmt.Sprintf("%.2f", last.NetPeakUtilization),
				fmt.Sprint(last.NetFinalLatency))
			t.AddRow(row...)
		}
	}
	t.AddNote("adding threads now raises the latency it must hide; the cached model's lower demand keeps the")
	t.AddNote("network fast, while the uncached model saturates it — the trade-off §6.1 predicts")
	o.printf("%s\n", t)
	return nil
}

// AblationTopology crosses the irregular kernels (pointer chase, hash
// join, sparse matrix-vector) with routed interconnect topologies.
// Unlike AblationNetwork's aggregate congestion feedback, each shared
// round trip here is routed hop by hop — dimension-order on the mesh,
// up/down through the fat tree, minimal local-global-local on the
// dragonfly — through per-link FIFO queues, so the scattered dependent
// loads of these kernels pay real distance and real contention. The
// constant row is the paper's fixed round trip, included as the
// baseline the routed rows degrade from.
func AblationTopology(o *Options) error {
	kernels, err := o.KernelApps()
	if err != nil {
		return err
	}
	kinds := make([]net.TopologyKind, 0, len(o.Topologies))
	for _, name := range o.Topologies {
		k, err := net.ParseTopology(name)
		if err != nil {
			return err
		}
		kinds = append(kinds, k)
	}
	threads := []int{2, 4, 8}
	t := &stats.Table{
		Title:  fmt.Sprintf("Ablation: irregular kernels x interconnect topologies (switch-on-load, latency %d), efficiency vs threads", o.Latency),
		Header: []string{"kernel / topology"},
	}
	for _, th := range threads {
		t.Header = append(t.Header, fmt.Sprintf("%dt", th))
	}
	t.Header = append(t.Header, "max-lat", "peak-queue")
	var warm []core.Job
	for _, a := range kernels {
		for _, k := range kinds {
			for _, th := range threads {
				warm = append(warm, core.Job{App: a, Cfg: topoCfg(o, a, k, th)})
			}
		}
	}
	o.prefetch(warm)
	for _, a := range kernels {
		base, err := o.Sess.BaselineContext(o.Context(), a)
		if err != nil {
			return err
		}
		for _, k := range kinds {
			row := []string{fmt.Sprintf("%s / %s", a.Name, k)}
			var last *machine.Result
			for _, th := range threads {
				r, err := o.Sess.RunContext(o.Context(), a, topoCfg(o, a, k, th))
				if err != nil {
					return err
				}
				row = append(row, fmt.Sprintf("%.3f", r.Efficiency(base)))
				last = r
			}
			row = append(row, fmt.Sprint(last.TopoMaxLatency), fmt.Sprint(last.TopoPeakQueue))
			t.AddRow(row...)
		}
	}
	t.AddNote("max-lat/peak-queue are at the highest thread level; the constant rows route nothing, so both read 0")
	t.AddNote("finding: more threads still buy efficiency on every topology, but the routed networks tax the")
	t.AddNote("dependent-load kernels with queueing that grows as the extra threads inject more scattered traffic")
	o.printf("%s\n", t)
	return nil
}

// topoCfg is the per-cell configuration AblationTopology sweeps. The
// topology's node count, hop cost and channel width stay at their
// Procs-derived defaults (TopologyConfig.WithDefaults).
func topoCfg(o *Options, a *appPkg, kind net.TopologyKind, threads int) machine.Config {
	cfg := machine.Config{
		Procs: a.TableProcs, Threads: threads,
		Model: machine.SwitchOnLoad, Latency: o.Latency,
	}
	cfg.Topology = net.TopologyConfig{Kind: kind}
	return cfg
}

// AblationMP3DSort answers the paper's closing wish for mp3d: lay the
// particles out in space-cell order so a thread's particle block touches
// a clustered set of space cells. Same kernel, same instruction stream —
// only the data layout changes — and the cache behaviour improves.
func AblationMP3DSort(o *Options) error {
	params := mp3d.ParamsFor(o.Scale)
	plainApp := mp3d.New(params)
	params.SortParticles = true
	sortedApp := mp3d.New(params)
	const procs = 8

	t := &stats.Table{
		Title:  fmt.Sprintf("Ablation: mp3d particle layout (conditional-switch, %d procs, 6 threads, latency %d)", procs, o.Latency),
		Header: []string{"layout", "cycles", "hit-rate", "b/cyc", "taken switches", "skipped"},
	}
	layouts := []*appPkg{plainApp, sortedApp}
	runs := make([]*machine.Result, len(layouts))
	err := o.forEach(len(layouts), func(i int) error {
		a := layouts[i]
		cfg := machine.Config{
			Procs: procs, Threads: 6,
			Model: machine.ConditionalSwitch, Latency: o.Latency,
		}
		g, _, err := a.Grouped()
		if err != nil {
			return err
		}
		runs[i], err = machine.RunChecked(cfg, g, a.Init, a.Check)
		return err
	})
	if err != nil {
		return err
	}
	for i, a := range layouts {
		rg := runs[i]
		t.AddRow(a.Name, fmt.Sprint(rg.Cycles),
			fmt.Sprintf("%.2f", rg.CacheHitRate()),
			fmt.Sprintf("%.2f", rg.BitsPerCycle()),
			fmt.Sprint(rg.TakenSwitches), fmt.Sprint(rg.SkippedSwitches))
	}
	t.AddNote("identical kernel and instruction stream; only the initial particle ordering differs")
	t.AddNote("finding: the layout helps (hit rate up, bandwidth and switches down) but only modestly —")
	t.AddNote("the particle records themselves stream through the cache once per step, and no layout fixes")
	t.AddNote("that, which rather supports the paper's pessimism about mp3d")
	o.printf("%s\n", t)
	return nil
}

// AblationPriority measures the §6.2 extension on the paper's own
// scenario: on each processor, one thread repeatedly takes a global lock
// (its critical section misses in the cache, so it context switches
// while holding the lock) while the sibling threads run repeated long
// cache-hit bursts whose conditional Switch instructions are all
// skipped. Without a run limit a woken holder waits out the rest of a
// sibling's burst (bounded only by the watchdog) and the serialized lock
// chain stretches; the run limit (the paper's fix) and holder priority
// (its suggested improvement) both bound the wait.
func AblationPriority(o *Options) error {
	const rounds, burst = 12, 300
	t := &stats.Table{
		Title: "Ablation: critical-region scheduling (lock-contention workload, conditional-switch)",
		Header: []string{"procs x threads", "no limit", "run-limit 200", "priority",
			"limit+priority", "limit gain", "priority gain", "combined gain"},
	}
	shapes := []struct{ p, th int }{{2, 4}, {4, 4}, {4, 8}}
	// Four scheduling variants per shape, all direct (unmemoized) machine
	// runs; spread the 12 across the worker pool and render afterwards.
	const variants = 4
	runs := make([]*machine.Result, len(shapes)*variants)
	err := o.forEach(len(runs), func(k int) error {
		shape := shapes[k/variants]
		p := buildLockWorkload(rounds, burst, int64(shape.th), int64(shape.p))
		check := func(sh *machine.Shared) error {
			want := int64(shape.p) * rounds // one locker per processor
			if got := sh.WordAt("cnt", 0); got != want {
				return fmt.Errorf("count = %d, want %d", got, want)
			}
			return nil
		}
		base := machine.Config{
			Procs: shape.p, Threads: shape.th,
			Model: machine.ConditionalSwitch, Latency: o.Latency,
		}
		// The pathology: no forced-switch interval, so a sibling's long
		// cache-hit run strands the lock holder (§6.2).
		noLimit := base
		noLimit.RunLimit = -1
		noLimit.PreemptLimit = 3000
		var cfg machine.Config
		switch k % variants {
		case 0:
			cfg = noLimit
		case 1:
			// The paper's fix: force a switch every 200 busy cycles.
			cfg = base
		case 2:
			// The paper's suggested improvement: priority for lock
			// holders, no run limit needed.
			cfg = noLimit
			cfg.CritPriority = true
		case 3:
			// Both: the paper's run limit plus holder priority.
			cfg = base
			cfg.CritPriority = true
		}
		var err error
		runs[k], err = machine.RunChecked(cfg, p, nil, check)
		return err
	})
	if err != nil {
		return err
	}
	for i, shape := range shapes {
		unlimited, limited, prio, both := runs[i*variants], runs[i*variants+1], runs[i*variants+2], runs[i*variants+3]
		t.AddRow(fmt.Sprintf("%dx%d", shape.p, shape.th),
			fmt.Sprint(unlimited.Cycles), fmt.Sprint(limited.Cycles),
			fmt.Sprint(prio.Cycles), fmt.Sprint(both.Cycles),
			fmt.Sprintf("%.2fx", float64(unlimited.Cycles)/float64(limited.Cycles)),
			fmt.Sprintf("%.2fx", float64(unlimited.Cycles)/float64(prio.Cycles)),
			fmt.Sprintf("%.2fx", float64(unlimited.Cycles)/float64(both.Cycles)))
	}
	t.AddNote("no limit: a sibling's cache-hit run strands the lock holder (the §6.2 pathology; watchdog at 3000)")
	t.AddNote("finding: holder priority alone bounds only the HOLDING time; spin-waiting acquirers are still")
	t.AddNote("stranded behind sibling runs, so the paper's run limit (which yields to every thread) wins, and")
	t.AddNote("priority adds a little more on top of it by resuming the holder first")
	o.printf("%s\n", t)
	return nil
}

// buildLockWorkload builds the §6.2 lock-contention program: the first
// thread of each processor locks `rounds` times; the rest run cache-hit
// bursts until every locker has finished.
func buildLockWorkload(rounds, burst, threadsPerProc, lockers int64) *prog.Program {
	b := prog.NewBuilder("lockwork")
	lk := par.AllocLock(b, "lk")
	b.Shared("pad", 8)
	cnt := b.Shared("cnt", 1)
	b.Shared("pad2", 7)
	fin := b.Shared("fin", 1)
	b.Shared("pad3", 7)
	done := b.Shared("done", 1)
	b.Shared("pad4", 7)
	hot := b.Shared("hot", 2048)

	b.Li(14, threadsPerProc)
	b.Rem(14, 1, 14)
	b.Bnez(14, "worker")
	b.Li(16, 0)
	b.Label("round")
	b.Li(9, lk.Base)
	par.LockAcquire(b, 9, 0, 10, 11)
	b.Li(6, cnt.Base)
	b.LwS(7, 6, 0)
	b.Switch()
	b.Addi(7, 7, 1)
	b.SwS(7, 6, 0)
	par.LockRelease(b, 9, 0, 10, 11)
	b.Addi(16, 16, 1)
	b.Li(11, rounds)
	b.Blt(16, 11, "round")
	b.Li(6, fin.Base)
	b.Li(10, 1)
	b.Faa(7, 6, 0, 10)
	b.Addi(7, 7, 1)
	b.Li(11, lockers)
	b.Bne(7, 11, "locker.end")
	b.Li(6, done.Base)
	b.SwS(10, 6, 0)
	b.Label("locker.end")
	b.Halt()
	b.Label("worker")
	b.Slli(4, 1, 3)
	b.Li(5, hot.Base)
	b.Add(4, 4, 5)
	b.Label("outer")
	b.Li(16, 0)
	b.Label("work")
	b.LwS(8, 4, 0)
	b.LwS(8, 4, 1)
	b.Switch()
	b.Addi(16, 16, 1)
	b.Li(11, burst)
	b.Blt(16, 11, "work")
	b.Li(6, done.Base)
	b.LwS(8, 6, 0)
	b.Switch()
	b.Beqz(8, "outer")
	b.Halt()
	return b.MustBuild()
}

// AblationFaults runs every application through an unreliable network:
// replies are dropped, delayed and duplicated at increasing rates, with
// and without latency jitter, and the machine's recovery protocol
// (timeout, NACK-retry with capped exponential backoff, sequence-number
// dedup) takes the hit in cycles. Faults are drawn from a seeded stream,
// so each cell is deterministic and memoizes like a clean run. A cell
// whose recovery stalls past MaxCycles renders as "stall" instead of
// failing the whole table — the sweep itself is fault-tolerant.
func AblationFaults(o *Options) error {
	rates := []float64{0, o.FaultRate / 5, o.FaultRate}
	jitter := o.FaultJitter
	if jitter == 0 {
		jitter = o.Latency / 2
	}
	t := &stats.Table{
		Title: fmt.Sprintf("Ablation: fault injection (drop/delay/dup at rate r, seed %d), efficiency (conditional-switch, 6 threads)",
			o.FaultSeed),
		Header: []string{"application (procs)"},
	}
	for _, r := range rates {
		t.Header = append(t.Header, fmt.Sprintf("r=%.3f", r), fmt.Sprintf("r=%.3f±j", r))
	}
	t.Header = append(t.Header, "retries@worst")
	var warm []core.Job
	for _, a := range o.Apps() {
		for _, r := range rates {
			for _, j := range []int{0, jitter} {
				warm = append(warm, core.Job{App: a, Cfg: faultsCfg(o, a, r, j)})
			}
		}
	}
	o.prefetch(warm)
	for _, a := range o.Apps() {
		base, err := o.Sess.BaselineContext(o.Context(), a)
		if err != nil {
			return err
		}
		row := []string{fmt.Sprintf("%s (%d)", a.Name, a.TableProcs)}
		var worst *machine.Result
		for _, r := range rates {
			for _, j := range []int{0, jitter} {
				res, err := o.Sess.RunContext(o.Context(), a, faultsCfg(o, a, r, j))
				switch {
				case err == nil:
					row = append(row, fmt.Sprintf("%.3f", res.Efficiency(base)))
					worst = res
				case errors.Is(err, machine.ErrMaxCycles):
					// Fault-induced stall (or livelock): report the cell,
					// keep the sweep going.
					row = append(row, "stall")
				default:
					return err
				}
			}
		}
		retries := "-"
		if worst != nil && worst.Config.Faults.Enabled {
			retries = fmt.Sprint(worst.Faults.Retries)
		}
		row = append(row, retries)
		t.AddRow(row...)
	}
	t.AddNote("±j adds a deterministic ±half-latency jitter on top of the fault rate")
	t.AddNote("every cell recomputes the correct answer: faults cost cycles (timeouts, backoff), never correctness")
	o.printf("%s\n", t)
	return nil
}

// faultsCfg is the per-cell configuration AblationFaults sweeps. Rate
// drives drops and delays fully and duplicates at half weight;
// protocol constants stay at their latency-derived defaults.
func faultsCfg(o *Options, a *appPkg, rate float64, jitter int) machine.Config {
	cfg := machine.Config{
		Procs: a.TableProcs, Threads: 6,
		Model: machine.ConditionalSwitch, Latency: o.Latency,
		LatencyJitter: jitter,
	}
	if rate > 0 {
		cfg.Faults = net.FaultConfig{
			Enabled: true, Seed: o.FaultSeed,
			DropRate: rate, DupRate: rate / 2, DelayRate: rate,
		}
	}
	return cfg
}

// AblationJitter relaxes the constant-latency assumption: a deterministic
// per-access deviation makes delivery unordered, which costs the
// round-robin schedule some of its optimality.
func AblationJitter(o *Options) error {
	fracs := []float64{0, 0.25, 0.5, 0.9}
	t := &stats.Table{
		Title:  fmt.Sprintf("Ablation: latency jitter vs efficiency (explicit-switch, latency %d, 8 threads)", o.Latency),
		Header: []string{"application"},
	}
	for _, f := range fracs {
		t.Header = append(t.Header, fmt.Sprintf("±%.0f%%", 100*f))
	}
	var warm []core.Job
	for _, name := range []string{"sieve", "sor", "water"} {
		if a, err := o.App(name); err == nil {
			for _, f := range fracs {
				warm = append(warm, core.Job{App: a, Cfg: jitterCfg(o, a, f)})
			}
		}
	}
	o.prefetch(warm)
	for _, name := range []string{"sieve", "sor", "water"} {
		a, err := o.App(name)
		if err != nil {
			return err
		}
		base, err := o.Sess.BaselineContext(o.Context(), a)
		if err != nil {
			return err
		}
		row := []string{a.Name}
		for _, f := range fracs {
			r, err := o.Sess.RunContext(o.Context(), a, jitterCfg(o, a, f))
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%.3f", r.Efficiency(base)))
		}
		t.AddRow(row...)
	}
	t.AddNote("jitter is cheap when thread coverage has slack (sieve, water) but costs real efficiency when")
	t.AddNote("threads barely cover the latency (sor at 8): unordered replies idle the round-robin schedule")
	o.printf("%s\n", t)
	return nil
}

// jitterCfg is the per-fraction configuration AblationJitter sweeps.
func jitterCfg(o *Options, a *appPkg, frac float64) machine.Config {
	return machine.Config{
		Procs: a.TableProcs, Threads: 8,
		Model: machine.ExplicitSwitch, Latency: o.Latency,
		LatencyJitter: int(frac * float64(o.Latency)),
	}
}
