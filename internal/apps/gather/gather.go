// Package gather builds an irregular pointer-chasing kernel: threads
// traverse a random functional graph (each node has exactly one
// outgoing edge) and sum the values they visit.
//
// The access pattern is the opposite of sieve's streaming regularity:
// every hop is a shared load whose *address* comes from the previous
// shared load (cur = next[cur]), so consecutive loads cannot overlap,
// cannot be grouped by the §5 transformation, and land on
// pseudo-random memory modules. Run lengths collapse toward the
// per-hop instruction count and the network sees scattered,
// dependent traffic — the regime the multithreading-level and
// topology sweeps are about. Threads self-schedule chunks of start
// nodes with Fetch-and-Add and accumulate into a global checksum, so
// the result is deterministic under any interleaving.
package gather

import (
	"fmt"

	"mtsim/internal/app"
	"mtsim/internal/machine"
	"mtsim/internal/par"
	"mtsim/internal/prog"
	"mtsim/internal/rng"
)

// Params sizes the problem.
type Params struct {
	// Nodes is the graph size.
	Nodes int64
	// Hops is the chase depth from each start node.
	Hops int64
	// Chunk is the self-scheduling chunk of start nodes.
	Chunk int64
	// Seed drives the deterministic graph generator.
	Seed uint64
}

// ParamsFor returns the problem size for a scale.
func ParamsFor(s app.Scale) Params {
	switch s {
	case app.Quick:
		return Params{Nodes: 2048, Hops: 8, Chunk: 32, Seed: 11}
	case app.Medium:
		return Params{Nodes: 16384, Hops: 12, Chunk: 64, Seed: 11}
	default:
		return Params{Nodes: 131072, Hops: 16, Chunk: 128, Seed: 11}
	}
}

func (p Params) normalized() Params {
	if p.Nodes < 16 {
		p.Nodes = 16
	}
	if p.Hops < 1 {
		p.Hops = 1
	}
	if p.Chunk < 1 {
		p.Chunk = 1
	}
	return p
}

// New builds the application.
func New(p Params) *app.App {
	p = p.normalized()
	// The graph and node values come from the seeded generator, so a
	// (Params, Seed) pair pins the workload bit-for-bit.
	r := rng.New(p.Seed)
	next := make([]int64, p.Nodes)
	val := make([]int64, p.Nodes)
	for i := range next {
		next[i] = r.Intn(p.Nodes)
	}
	for i := range val {
		val[i] = r.Intn(1000)
	}

	b := prog.NewBuilder("gather")
	nextS := b.Shared("next", p.Nodes)
	valS := b.Shared("val", p.Nodes)
	lastS := b.Shared("last", p.Nodes)
	sctr := b.Shared("sctr", 1)
	acc := b.Shared("acc", 1)

	// Registers: r4 next base, r5 val base, r6 node count, r7 chunk
	// start, r8 pointer, r9/r10 scratch, r11 chunk end, r12 local sum,
	// r13 start node, r14 current node, r15 hop counter, r16 address
	// scratch, r17 loaded value, r18 hop bound, r19 last base.
	b.Li(4, nextS.Base)
	b.Li(5, valS.Base)
	b.Li(6, p.Nodes)
	b.Li(18, p.Hops)
	b.Li(19, lastS.Base)

	b.Label("seg")
	b.Li(8, sctr.Base)
	par.SelfSchedule(b, 8, 0, p.Chunk, 7, 10)
	b.Bge(7, 6, "seg.done")
	b.Addi(11, 7, p.Chunk)
	b.Blt(11, 6, "eok")
	b.Mov(11, 6)
	b.Label("eok")
	b.Li(12, 0)
	b.Mov(13, 7)
	b.Label("node")
	b.Bge(13, 11, "flush")
	b.Mov(14, 13)
	b.Li(15, 0)
	b.Label("hop")
	b.Bge(15, 18, "hop.done")
	b.Add(16, 5, 14)
	b.LwS(17, 16, 0) // val[cur]
	b.Add(12, 12, 17)
	b.Add(16, 4, 14)
	b.LwS(14, 16, 0) // cur = next[cur]: the dependent chase
	b.Addi(15, 15, 1)
	b.J("hop")
	b.Label("hop.done")
	b.Add(16, 19, 13)
	b.SwS(14, 16, 0) // last[start] = where the chase ended
	b.Addi(13, 13, 1)
	b.J("node")
	b.Label("flush")
	b.Li(8, acc.Base)
	b.Faa(9, 8, 0, 12)
	b.J("seg")
	b.Label("seg.done")
	b.Halt()

	raw := b.MustBuild()
	want, wantLast := hostGather(next, val, p.Hops)

	return &app.App{
		Name:        "gather",
		Description: "pointer-chasing traversal of a random functional graph",
		Problem:     fmt.Sprintf("%d nodes x %d hops", p.Nodes, p.Hops),
		Raw:         raw,
		TableProcs:  16,
		Init: func(sh *machine.Shared) {
			for i := int64(0); i < p.Nodes; i++ {
				sh.SetWordAt("next", i, next[i])
				sh.SetWordAt("val", i, val[i])
			}
		},
		Check: func(sh *machine.Shared) error {
			if got := sh.WordAt("acc", 0); got != want {
				return fmt.Errorf("gather: checksum %d, want %d", got, want)
			}
			for i := int64(0); i < p.Nodes; i++ {
				if got := sh.WordAt("last", i); got != wantLast[i] {
					return fmt.Errorf("gather: last[%d] = %d, want %d", i, got, wantLast[i])
				}
			}
			return nil
		},
	}
}

// hostGather is the reference traversal: the value checksum and the
// node each chase ends on.
func hostGather(next, val []int64, hops int64) (int64, []int64) {
	var sum int64
	last := make([]int64, len(next))
	for i := range next {
		cur := int64(i)
		for h := int64(0); h < hops; h++ {
			sum += val[cur]
			cur = next[cur]
		}
		last[i] = cur
	}
	return sum, last
}
