// Package spmv builds an irregular sparse matrix-vector product over
// a CSR (compressed sparse row) matrix with integer entries. Threads
// self-schedule chunks of rows; each row walks its rowptr-delimited
// slice of column indices and values, gathers x[colidx[k]] — a load
// whose address comes from another load — and stores the dot product
// into y[row].
//
// Row lengths are drawn per-row from the seeded generator, so chunks
// carry unequal work and the load balance is data-dependent, unlike
// the uniform strips of sor or matmul. The scattered x-gathers spread
// across memory modules under a real topology while the CSR streams
// stay sequential, mixing regular and irregular traffic in one
// kernel. Every y element is checked against a host mirror.
package spmv

import (
	"fmt"

	"mtsim/internal/app"
	"mtsim/internal/machine"
	"mtsim/internal/par"
	"mtsim/internal/prog"
	"mtsim/internal/rng"
)

// Params sizes the problem.
type Params struct {
	// Rows and Cols shape the matrix.
	Rows int64
	Cols int64
	// MaxRowLen bounds the per-row nonzero count (drawn uniformly from
	// [0, MaxRowLen]).
	MaxRowLen int64
	// Chunk is the self-scheduling chunk of rows.
	Chunk int64
	// Seed drives the deterministic matrix generator.
	Seed uint64
}

// ParamsFor returns the problem size for a scale.
func ParamsFor(s app.Scale) Params {
	switch s {
	case app.Quick:
		return Params{Rows: 512, Cols: 512, MaxRowLen: 8, Chunk: 16, Seed: 23}
	case app.Medium:
		return Params{Rows: 4096, Cols: 4096, MaxRowLen: 12, Chunk: 32, Seed: 23}
	default:
		return Params{Rows: 16384, Cols: 16384, MaxRowLen: 16, Chunk: 64, Seed: 23}
	}
}

func (p Params) normalized() Params {
	if p.Rows < 8 {
		p.Rows = 8
	}
	if p.Cols < 8 {
		p.Cols = 8
	}
	if p.MaxRowLen < 1 {
		p.MaxRowLen = 1
	}
	if p.Chunk < 1 {
		p.Chunk = 1
	}
	return p
}

// New builds the application.
func New(p Params) *app.App {
	p = p.normalized()
	r := rng.New(p.Seed)
	rowptr := make([]int64, p.Rows+1)
	for i := int64(0); i < p.Rows; i++ {
		rowptr[i+1] = rowptr[i] + r.Intn(p.MaxRowLen+1)
	}
	nnz := rowptr[p.Rows]
	colidx := make([]int64, nnz)
	vals := make([]int64, nnz)
	for k := range colidx {
		colidx[k] = r.Intn(p.Cols)
		vals[k] = r.Intn(100)
	}
	x := make([]int64, p.Cols)
	for c := range x {
		x[c] = r.Intn(100)
	}

	b := prog.NewBuilder("spmv")
	rowptrS := b.Shared("rowptr", p.Rows+1)
	colidxS := b.Shared("colidx", nnz+1) // +1 keeps the segment non-empty for an all-zero matrix
	valsS := b.Shared("vals", nnz+1)
	xS := b.Shared("x", p.Cols)
	yS := b.Shared("y", p.Rows)
	sctr := b.Shared("sctr", 1)

	// Registers: r4 rowptr base, r5 colidx base, r6 vals base, r7 chunk
	// start, r8 counter pointer, r9/r10 scratch, r11 chunk end, r12 row
	// accumulator, r13 row index, r14 element cursor, r15 row end,
	// r16 address scratch, r17 column / x value, r18 matrix value,
	// r19 x base, r20 y base, r21 row count.
	b.Li(4, rowptrS.Base)
	b.Li(5, colidxS.Base)
	b.Li(6, valsS.Base)
	b.Li(19, xS.Base)
	b.Li(20, yS.Base)
	b.Li(21, p.Rows)

	b.Label("seg")
	b.Li(8, sctr.Base)
	par.SelfSchedule(b, 8, 0, p.Chunk, 7, 10)
	b.Bge(7, 21, "done")
	b.Addi(11, 7, p.Chunk)
	b.Blt(11, 21, "eok")
	b.Mov(11, 21)
	b.Label("eok")
	b.Mov(13, 7)
	b.Label("row")
	b.Bge(13, 11, "seg")
	b.Add(16, 4, 13)
	b.LwS(14, 16, 0) // k   = rowptr[i]
	b.LwS(15, 16, 1) // end = rowptr[i+1]
	b.Li(12, 0)
	b.Label("elem")
	b.Bge(14, 15, "row.store")
	b.Add(16, 5, 14)
	b.LwS(17, 16, 0) // c = colidx[k]
	b.Add(16, 6, 14)
	b.LwS(18, 16, 0) // v = vals[k]
	b.Add(16, 19, 17)
	b.LwS(17, 16, 0) // x[c]: the dependent gather
	b.Mul(17, 17, 18)
	b.Add(12, 12, 17)
	b.Addi(14, 14, 1)
	b.J("elem")
	b.Label("row.store")
	b.Add(16, 20, 13)
	b.SwS(12, 16, 0) // y[i] = row dot product
	b.Addi(13, 13, 1)
	b.J("row")
	b.Label("done")
	b.Halt()

	raw := b.MustBuild()
	want := hostSpmv(rowptr, colidx, vals, x)

	return &app.App{
		Name:        "spmv",
		Description: "CSR sparse matrix-vector product with scattered x-gathers",
		Problem:     fmt.Sprintf("%dx%d, %d nonzeros", p.Rows, p.Cols, nnz),
		Raw:         raw,
		TableProcs:  16,
		Init: func(sh *machine.Shared) {
			for i := int64(0); i <= p.Rows; i++ {
				sh.SetWordAt("rowptr", i, rowptr[i])
			}
			for k := int64(0); k < nnz; k++ {
				sh.SetWordAt("colidx", k, colidx[k])
				sh.SetWordAt("vals", k, vals[k])
			}
			for c := int64(0); c < p.Cols; c++ {
				sh.SetWordAt("x", c, x[c])
			}
		},
		Check: func(sh *machine.Shared) error {
			for i := int64(0); i < p.Rows; i++ {
				if got := sh.WordAt("y", i); got != want[i] {
					return fmt.Errorf("spmv: y[%d] = %d, want %d", i, got, want[i])
				}
			}
			return nil
		},
	}
}

// hostSpmv is the reference product.
func hostSpmv(rowptr, colidx, vals, x []int64) []int64 {
	y := make([]int64, len(rowptr)-1)
	for i := range y {
		var sum int64
		for k := rowptr[i]; k < rowptr[i+1]; k++ {
			sum += vals[k] * x[colidx[k]]
		}
		y[i] = sum
	}
	return y
}
