package apps_test

import (
	"os"
	"path/filepath"
	"testing"

	"mtsim/internal/asm"
)

// TestGoldenAssembly pins every benchmark's raw and grouped code against
// checked-in disassembly (testdata/*.mt): an unintended change to a
// kernel, to the code generator conventions, or to the optimizer's
// schedule shows up as a golden diff. The files also serve as readable
// documentation of what each kernel does.
//
// Regenerate after an intended change with:
//
//	go test ./internal/apps -run TestGoldenAssembly -update
var update = false

func init() {
	for _, a := range os.Args {
		if a == "-update" || a == "--update" {
			update = true
		}
	}
}

func TestGoldenAssembly(t *testing.T) {
	for _, a := range everyApp() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			grouped, _, err := a.Grouped()
			if err != nil {
				t.Fatal(err)
			}
			cases := map[string]string{
				a.Name + ".mt":         asm.Format(a.Raw),
				a.Name + ".grouped.mt": asm.Format(grouped),
			}
			for file, got := range cases {
				path := filepath.Join("testdata", file)
				if update {
					if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
						t.Fatal(err)
					}
					continue
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden file %s (run with -update): %v", path, err)
				}
				if got != string(want) {
					t.Errorf("%s: assembly changed; run with -update if intended", file)
				}
			}
		})
	}
}

// TestGoldenFilesParseBack: every golden file must re-assemble into a
// program with the same instruction count — the disassembler and
// assembler stay inverses on real programs.
func TestGoldenFilesParseBack(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.mt"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no golden files: %v", err)
	}
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		p, err := asm.ParseString(string(src))
		if err != nil {
			t.Errorf("%s: %v", f, err)
			continue
		}
		if len(p.Instrs) == 0 {
			t.Errorf("%s: parsed empty program", f)
		}
		if asm.Format(p) != string(src) {
			t.Errorf("%s: format(parse(x)) != x", f)
		}
	}
}
