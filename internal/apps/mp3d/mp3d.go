// Package mp3d builds a stand-in for the SPLASH MP3D rarefied-flow
// particle simulator (Table 1: 100,000 particles, 10 iterations).
//
// Substitution (see DESIGN.md §2): the original moves particles through a
// space-cell array each step, with essentially no reference locality —
// the property that makes mp3d the paper's hard case (§6.1: "very poor
// reference locality and thus benefits little from caching"). Our kernel
// keeps that character: each thread owns a block of particles; per step
// it loads a particle's six coordinates, advances the position, hashes
// the position to a space cell (scattered across a large cell array),
// bumps the cell's population counter with Fetch-and-Add, reads the
// cell's static property, applies a property-dependent collision to the
// velocity, and stores the particle back. With randomly placed particles
// the 3D-grid cell lookups are scattered, so a cache mostly fetches
// lines it never reuses — unless the particles are laid out in cell
// order (Params.SortParticles, the paper's suggested rewrite).
package mp3d

import (
	"fmt"
	"sort"

	"mtsim/internal/app"
	"mtsim/internal/isa"
	"mtsim/internal/machine"
	"mtsim/internal/par"
	"mtsim/internal/prog"
	"mtsim/internal/rng"
)

// partCells is the padded particle record size: x y z vx vy vz pad pad.
const partCells = 8

// cellCells is the space-cell record: population counter, property.
const cellCells = 2

// Params sizes the problem.
type Params struct {
	Particles int64
	Steps     int64
	// Cells is the space-cell count (rounded up to a power of two).
	Cells int64
	Dt    float64
	Seed  uint64
	// SortParticles lays particles out in space-cell order, so each
	// thread's block of particles touches a clustered set of space
	// cells — the locality rewrite the paper wishes for (§6.1: "We
	// would be interested in seeing if this application could be
	// rewritten to improve its locality").
	SortParticles bool
}

// ParamsFor returns the problem size for a scale. Full is the paper's
// 100,000 particles, 10 steps.
func ParamsFor(s app.Scale) Params {
	switch s {
	case app.Quick:
		return Params{Particles: 3000, Steps: 2, Cells: 2048, Dt: 0.01, Seed: 6}
	case app.Medium:
		return Params{Particles: 12000, Steps: 4, Cells: 8192, Dt: 0.01, Seed: 6}
	default:
		return Params{Particles: 100000, Steps: 10, Cells: 65536, Dt: 0.01, Seed: 6}
	}
}

// sortByCell orders the particle records by the space cell of their
// first move (stable sort by cell key; deterministic).
func sortByCell(px []float64, n int64, dt, scale float64, mask int64) {
	key := func(i int64) int64 {
		x := px[i*6+0] + px[i*6+3]*dt
		y := px[i*6+1] + px[i*6+4]*dt
		z := px[i*6+2] + px[i*6+5]*dt
		return (int64(x*scale) + int64(y*scale)<<5 + int64(z*scale)<<10) & mask
	}
	type rec struct {
		k int64
		v [6]float64
	}
	recs := make([]rec, n)
	for i := int64(0); i < n; i++ {
		recs[i].k = key(i)
		copy(recs[i].v[:], px[i*6:i*6+6])
	}
	sort.SliceStable(recs, func(a, b int) bool { return recs[a].k < recs[b].k })
	for i := int64(0); i < n; i++ {
		copy(px[i*6:i*6+6], recs[i].v[:])
	}
}

func (p Params) normalized() Params {
	if p.Particles < 8 {
		p.Particles = 8
	}
	if p.Steps < 1 {
		p.Steps = 1
	}
	if p.Cells < 16 {
		p.Cells = 16
	}
	for c := int64(1); ; c <<= 1 {
		if c >= p.Cells {
			p.Cells = c
			break
		}
	}
	if p.Dt == 0 {
		p.Dt = 0.01
	}
	return p
}

// New builds the application.
func New(p Params) *app.App {
	p = p.normalized()
	n := p.Particles
	mask := p.Cells - 1
	const scale = 64.0 // position-to-cell hash scale

	b := prog.NewBuilder("mp3d")
	part := b.Shared("part", n*partCells)
	cells := b.Shared("cells", p.Cells*cellCells)
	bar := par.AllocBarrier(b, "bar")

	const rSense = 20
	// r4 part base, r5 cells base, r7 lo, r8 hi, r9 i, r12 particle
	// address, r14/r15 scratch, r16 cell address, r17 bar base, r18
	// step, r21 one, r22 mask.
	// f1..f6 x y z vx vy vz, f10 dt, f11 hash scale, f12 collision
	// threshold, f14/f15 scratch.
	b.Li(4, part.Base)
	b.Li(5, cells.Base)
	b.Li(17, bar.Base)
	b.Li(21, 1)
	b.Li(22, mask)
	b.LiF(10, p.Dt, 14)
	b.LiF(11, scale, 14)
	b.LiF(12, 0.5, 14)
	// Static block decomposition.
	b.Li(14, n)
	b.Add(14, 14, isa.RNth)
	b.Addi(14, 14, -1)
	b.Div(14, 14, isa.RNth)
	b.Mul(7, 14, isa.RTid)
	b.Add(8, 7, 14)
	b.Li(15, n)
	b.Blt(8, 15, "hiok")
	b.Mov(8, 15)
	b.Label("hiok")

	b.Li(18, 0)
	b.Label("step")
	b.Mov(9, 7)
	b.Label("move")
	b.Bge(9, 8, "move.done")
	b.Slli(12, 9, 3)
	b.Add(12, 12, 4)
	// Load the particle (positions and velocities in two line-sized
	// halves of the record).
	b.FlwS(1, 12, 0)
	b.FlwS(2, 12, 1)
	b.FlwS(3, 12, 2)
	b.FlwS(4, 12, 3)
	b.FlwS(5, 12, 4)
	b.FlwS(6, 12, 5)
	// Advance: pos += vel * dt.
	b.Fmul(14, 4, 10)
	b.Fadd(1, 1, 14)
	b.Fmul(14, 5, 10)
	b.Fadd(2, 2, 14)
	b.Fmul(14, 6, 10)
	b.Fadd(3, 3, 14)
	// Spatial cell index (3D grid, as in the original):
	// cell = (ix + (iy << 5) + (iz << 10)) & mask.
	b.Fmul(14, 1, 11)
	b.CvtFI(14, 14)
	b.Fmul(15, 2, 11)
	b.CvtFI(15, 15)
	b.Slli(15, 15, 5)
	b.Add(14, 14, 15)
	b.Fmul(15, 3, 11)
	b.CvtFI(15, 15)
	b.Slli(15, 15, 10)
	b.Add(14, 14, 15)
	b.And(14, 14, 22)
	b.Slli(16, 14, 1)
	b.Add(16, 16, 5) // &cells[cell]
	// Population count and property lookup: the scattered accesses.
	b.Faa(15, 16, 0, 21)
	b.FlwS(14, 16, 1) // property
	// Collision: if the cell property >= 0.5, scatter the velocity off
	// a partner cell's property (a second scattered lookup, like the
	// original's collision-partner selection).
	b.Flt(15, 14, 12)
	b.Bnez(15, "nocollide")
	b.Muli(15, 14, 40503) // integer r14 still holds the cell index
	b.Addi(15, 15, 7)
	b.And(15, 15, 22)
	b.Slli(15, 15, 1)
	b.Add(15, 15, 5)
	b.FlwS(14, 15, 1) // partner property
	b.Fneg(15, 14)
	b.Fmul(4, 4, 15)
	b.Fmul(5, 5, 14)
	b.Fmul(6, 6, 15)
	b.Label("nocollide")
	// Store the particle back.
	b.FswS(1, 12, 0)
	b.FswS(2, 12, 1)
	b.FswS(3, 12, 2)
	b.FswS(4, 12, 3)
	b.FswS(5, 12, 4)
	b.FswS(6, 12, 5)
	b.Addi(9, 9, 1)
	b.J("move")
	b.Label("move.done")
	par.Barrier(b, 17, 0, rSense, 14, 15)
	b.Addi(18, 18, 1)
	b.Slti(14, 18, p.Steps)
	b.Bnez(14, "step")
	b.Halt()
	raw := b.MustBuild()

	// Workload and exact-order reference.
	px := make([]float64, n*6)
	props := make([]float64, p.Cells)
	r := rng.New(p.Seed)
	for i := int64(0); i < n; i++ {
		px[i*6+0] = r.Range(0, 8)
		px[i*6+1] = r.Range(0, 8)
		px[i*6+2] = r.Range(0, 8)
		px[i*6+3] = r.Range(-2, 2)
		px[i*6+4] = r.Range(-2, 2)
		px[i*6+5] = r.Range(-2, 2)
	}
	for i := range props {
		props[i] = r.Float()
	}
	if p.SortParticles {
		// The locality rewrite: order particles by the space cell their
		// first step will touch, so a thread's contiguous particle
		// block hits a clustered set of cells.
		sortByCell(px, n, p.Dt, scale, mask)
	}
	want := append([]float64(nil), px...)
	wantCnt := make([]int64, p.Cells)
	for step := int64(0); step < p.Steps; step++ {
		for i := int64(0); i < n; i++ {
			s := want[i*6:]
			s[0] += s[3] * p.Dt
			s[1] += s[4] * p.Dt
			s[2] += s[5] * p.Dt
			ix := int64(s[0] * scale)
			iy := int64(s[1] * scale)
			iz := int64(s[2] * scale)
			cell := (ix + iy<<5 + iz<<10) & mask
			wantCnt[cell]++
			prop := props[cell]
			if !(prop < 0.5) {
				partner := (cell*40503 + 7) & mask
				p2 := props[partner]
				s[3] *= -p2
				s[4] *= p2
				s[5] *= -p2
			}
		}
	}

	name := "mp3d"
	if p.SortParticles {
		name = "mp3d-sorted"
	}
	return &app.App{
		Name:        name,
		Description: "rarefied hypersonic flow particle simulator (kernel substitute)",
		Problem:     fmt.Sprintf("%d particles, %d steps, %d space cells", n, p.Steps, p.Cells),
		Raw:         raw,
		TableProcs:  32,
		Init: func(sh *machine.Shared) {
			for i := int64(0); i < n; i++ {
				for d := int64(0); d < 6; d++ {
					sh.SetFloatAt("part", i*partCells+d, px[i*6+d])
				}
			}
			for i := int64(0); i < p.Cells; i++ {
				sh.SetFloatAt("cells", i*cellCells+1, props[i])
			}
		},
		Check: func(sh *machine.Shared) error {
			for i := int64(0); i < n; i++ {
				for d := int64(0); d < 6; d++ {
					if got := sh.FloatAt("part", i*partCells+d); got != want[i*6+d] {
						return fmt.Errorf("mp3d: particle %d field %d = %g, want %g", i, d, got, want[i*6+d])
					}
				}
			}
			for c := int64(0); c < p.Cells; c++ {
				if got := sh.WordAt("cells", c*cellCells); got != wantCnt[c] {
					return fmt.Errorf("mp3d: cell %d count = %d, want %d", c, got, wantCnt[c])
				}
			}
			return nil
		},
	}
}
