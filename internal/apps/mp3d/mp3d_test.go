package mp3d_test

import (
	"testing"

	"mtsim/internal/apps/mp3d"
	"mtsim/internal/apps/sor"
	"mtsim/internal/machine"
)

func TestCorrectAtAwkwardShapes(t *testing.T) {
	for _, p := range []mp3d.Params{
		{Particles: 9, Steps: 1, Cells: 17, Dt: 0.05, Seed: 1}, // cells round up
		{Particles: 100, Steps: 3, Cells: 64, Dt: 0.01, Seed: 2},
	} {
		a := mp3d.New(p)
		if _, err := a.Run(machine.Config{Procs: 3, Threads: 3, Model: machine.ConditionalSwitch, Latency: 50}); err != nil {
			t.Errorf("%+v: %v", p, err)
		}
	}
}

// TestShortRunLengths: mp3d is listed with sor and locus among the codes
// with "very short run-lengths" needing "large multithreading levels"
// (§4.1).
func TestShortRunLengths(t *testing.T) {
	a := mp3d.New(mp3d.ParamsFor(0))
	res, err := a.Run(machine.Config{
		Procs: 8, Threads: 4, Model: machine.SwitchOnLoad,
		Latency: 200, CollectRunLengths: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sf := res.RunLengths.ShortFrac(); sf < 0.4 {
		t.Errorf("short run-length fraction = %.2f, want >= 0.4", sf)
	}
}

// TestPoorLocality: "the mp3d application has very poor reference
// locality and thus benefits little from caching" (§6.1): its hit rate
// must sit clearly below a stencil code's, and its bandwidth demand must
// stay the highest of the two.
func TestPoorLocality(t *testing.T) {
	cfg := machine.Config{Procs: 8, Threads: 6, Model: machine.ConditionalSwitch, Latency: 200}
	am := mp3d.New(mp3d.ParamsFor(0))
	rm, err := am.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	as := sor.New(sor.ParamsFor(0))
	cfgS := cfg
	cfgS.Procs = 4
	rs, err := as.Run(cfgS)
	if err != nil {
		t.Fatal(err)
	}
	if rm.CacheHitRate() >= rs.CacheHitRate() {
		t.Errorf("mp3d hit rate %.2f >= sor %.2f; mp3d must cache worse",
			rm.CacheHitRate(), rs.CacheHitRate())
	}
	if rm.BitsPerCycle() <= rs.BitsPerCycle() {
		t.Errorf("mp3d bandwidth %.2f <= sor %.2f; mp3d must stay bandwidth-hungry",
			rm.BitsPerCycle(), rs.BitsPerCycle())
	}
}

// TestCellCountersConserved: every particle bumps exactly one cell
// counter per step, so the counters must sum to particles x steps (also
// verified per-cell by App.Check; this asserts the aggregate invariant
// under heavy contention).
func TestCellCountersConserved(t *testing.T) {
	p := mp3d.Params{Particles: 256, Steps: 3, Cells: 64, Dt: 0.01, Seed: 4}
	a := mp3d.New(p)
	prg := a.Raw
	res, err := machine.RunChecked(machine.Config{Procs: 4, Threads: 4, Model: machine.SwitchOnUse, Latency: 100},
		prg, a.Init, func(sh *machine.Shared) error {
			var sum int64
			for c := int64(0); c < 64; c++ {
				sum += sh.WordAt("cells", c*2)
			}
			if want := int64(256 * 3); sum != want {
				t.Errorf("counter sum = %d, want %d", sum, want)
			}
			return a.Check(sh)
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.SharedLoads == 0 {
		t.Error("no shared loads recorded")
	}
}
