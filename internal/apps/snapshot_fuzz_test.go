package apps_test

import (
	"context"
	"encoding/json"
	"testing"

	"mtsim/internal/app"
	"mtsim/internal/apps"
	"mtsim/internal/machine"
)

// FuzzSnapshotRoundtrip fuzzes the checkpoint layer's byte-identity
// contract across the paper's whole benchmark suite: for any of the
// seven applications, any switch model and any pause cycle, running to
// the pause, serializing the machine, restoring it from the bytes and
// running on must reproduce the uninterrupted run's Result — Metrics
// included — byte for byte, and still pass the application's own
// correctness check.
func FuzzSnapshotRoundtrip(f *testing.F) {
	f.Add(uint8(0), uint8(4), uint64(500))
	f.Add(uint8(3), uint8(7), uint64(1))
	f.Add(uint8(6), uint8(2), uint64(1<<40))
	f.Add(uint8(2), uint8(0), uint64(12345))
	f.Fuzz(func(t *testing.T, appIdx, modelIdx uint8, pauseSeed uint64) {
		names := apps.Names()
		a := apps.MustNew(names[int(appIdx)%len(names)], app.Quick)
		model := machine.Model(int(modelIdx) % machine.NumModels)
		cfg := machine.Config{
			Procs: 4, Threads: 2, Model: model, Latency: 64,
			CollectMetrics: true, CollectRunLengths: true,
		}
		p, err := a.ProgramFor(model)
		if err != nil {
			t.Fatal(err)
		}

		want, err := machine.RunChecked(cfg, p, a.Init, a.Check)
		if err != nil {
			t.Fatal(err)
		}

		// Pause somewhere inside the run (cycle 1 .. Cycles; pausing at
		// or past the end just completes, which is also worth covering).
		pause := int64(pauseSeed%uint64(want.Cycles)) + 1
		mc, err := machine.NewMachine(cfg, p, a.Init)
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		done, err := mc.RunUntil(ctx, pause)
		if err != nil {
			t.Fatal(err)
		}
		if !done {
			snap, err := mc.Snapshot()
			if err != nil {
				t.Fatalf("Snapshot at cycle %d: %v", mc.Cycle(), err)
			}
			if mc, err = machine.RestoreMachine(snap, p); err != nil {
				t.Fatalf("RestoreMachine: %v", err)
			}
		}
		got, err := mc.Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Check(mc.SharedMem()); err != nil {
			t.Fatalf("restored run computed a wrong result: %v", err)
		}

		wj, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		gj, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		if string(wj) != string(gj) {
			t.Errorf("app=%s model=%s pause=%d: resumed result differs\n--- uninterrupted ---\n%s\n--- resumed ---\n%s",
				a.Name, model, pause, wj, gj)
		}
	})
}
