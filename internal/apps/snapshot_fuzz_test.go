package apps_test

import (
	"context"
	"encoding/json"
	"testing"

	"mtsim/internal/app"
	"mtsim/internal/apps"
	"mtsim/internal/machine"
	"mtsim/internal/net"
)

// FuzzSnapshotRoundtrip fuzzes the checkpoint layer's byte-identity
// contract across the whole application suite — the paper's seven
// benchmarks plus the irregular kernels — on every switch model and
// every network topology: for any app, model, topology and pause
// cycle, running to the pause, serializing the machine (link queues
// included), restoring it from the bytes and running on must reproduce
// the uninterrupted run's Result — Metrics included — byte for byte,
// and still pass the application's own correctness check.
func FuzzSnapshotRoundtrip(f *testing.F) {
	f.Add(uint8(0), uint8(4), uint8(0), uint64(500))
	f.Add(uint8(3), uint8(7), uint8(0), uint64(1))
	f.Add(uint8(6), uint8(2), uint8(0), uint64(1<<40))
	f.Add(uint8(2), uint8(0), uint8(0), uint64(12345))
	// Irregular kernels on routed topologies: the link-queue half of the
	// v3 snapshot only matters when a non-constant network is live.
	f.Add(uint8(7), uint8(2), uint8(1), uint64(700))
	f.Add(uint8(8), uint8(4), uint8(2), uint64(333))
	f.Add(uint8(9), uint8(2), uint8(3), uint64(4096))
	f.Add(uint8(1), uint8(2), uint8(1), uint64(2500))
	f.Fuzz(func(t *testing.T, appIdx, modelIdx, topoIdx uint8, pauseSeed uint64) {
		names := apps.AllNames()
		a := apps.MustNew(names[int(appIdx)%len(names)], app.Quick)
		model := machine.Model(int(modelIdx) % machine.NumModels)
		kind := net.TopologyKind(int(topoIdx) % net.NumTopologies)
		if model == machine.Ideal {
			// An ideal machine has no network; Validate rejects a routed
			// topology on it, so clamp back to the constant kind.
			kind = net.TopoConstant
		}
		cfg := machine.Config{
			Procs: 4, Threads: 2, Model: model, Latency: 64,
			CollectMetrics: true, CollectRunLengths: true,
		}
		cfg.Topology = net.TopologyConfig{Kind: kind}
		p, err := a.ProgramFor(model)
		if err != nil {
			t.Fatal(err)
		}

		want, err := machine.RunChecked(cfg, p, a.Init, a.Check)
		if err != nil {
			t.Fatal(err)
		}

		// Pause somewhere inside the run (cycle 1 .. Cycles; pausing at
		// or past the end just completes, which is also worth covering).
		pause := int64(pauseSeed%uint64(want.Cycles)) + 1
		mc, err := machine.NewMachine(cfg, p, a.Init)
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		done, err := mc.RunUntil(ctx, pause)
		if err != nil {
			t.Fatal(err)
		}
		if !done {
			snap, err := mc.Snapshot()
			if err != nil {
				t.Fatalf("Snapshot at cycle %d: %v", mc.Cycle(), err)
			}
			if mc, err = machine.RestoreMachine(snap, p); err != nil {
				t.Fatalf("RestoreMachine: %v", err)
			}
		}
		got, err := mc.Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Check(mc.SharedMem()); err != nil {
			t.Fatalf("restored run computed a wrong result: %v", err)
		}

		wj, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		gj, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		if string(wj) != string(gj) {
			t.Errorf("app=%s model=%s topo=%s pause=%d: resumed result differs\n--- uninterrupted ---\n%s\n--- resumed ---\n%s",
				a.Name, model, kind, pause, wj, gj)
		}
	})
}
