// Package apps is the registry of the paper's seven benchmark
// applications (Table 1), instantiated at a chosen problem scale,
// plus three irregular-workload kernels (gather, hashjoin, spmv)
// added for the topology experiments.
package apps

import (
	"fmt"

	"mtsim/internal/app"
	"mtsim/internal/apps/blkmat"
	"mtsim/internal/apps/gather"
	"mtsim/internal/apps/hashjoin"
	"mtsim/internal/apps/locus"
	"mtsim/internal/apps/mp3d"
	"mtsim/internal/apps/sieve"
	"mtsim/internal/apps/sor"
	"mtsim/internal/apps/spmv"
	"mtsim/internal/apps/ugray"
	"mtsim/internal/apps/water"
)

// Names lists the paper's applications in Table 1 order. The irregular
// kernels are deliberately excluded: this set feeds the paper-replica
// experiments and their goldens, which must not change as kernels are
// added. Use IrregularNames or AllNames for the extended set.
func Names() []string {
	return []string{"sieve", "blkmat", "sor", "ugray", "water", "locus", "mp3d"}
}

// IrregularNames lists the irregular-workload kernels used by the
// topology experiments.
func IrregularNames() []string {
	return []string{"gather", "hashjoin", "spmv"}
}

// AllNames lists every buildable application: the Table 1 set followed
// by the irregular kernels.
func AllNames() []string {
	return append(Names(), IrregularNames()...)
}

// tableProcs is the processor count at which each application's
// paper-style table rows are measured at each scale — as in the paper,
// chosen just before the fixed problem size runs out of parallelism. The
// water entries divide the molecule count evenly (49, 125, 343), which
// its static load balancing rewards (§3.2).
var tableProcs = map[string][3]int{
	"sieve":    {8, 16, 16},
	"blkmat":   {6, 16, 16},
	"sor":      {4, 8, 16},
	"ugray":    {8, 16, 16},
	"water":    {7, 7, 49},
	"locus":    {8, 16, 16},
	"mp3d":     {8, 16, 32},
	"gather":   {8, 16, 16},
	"hashjoin": {8, 16, 16},
	"spmv":     {8, 16, 16},
}

// New builds one application by name at the given scale.
func New(name string, s app.Scale) (*app.App, error) {
	var a *app.App
	switch name {
	case "sieve":
		a = sieve.New(sieve.ParamsFor(s))
	case "blkmat":
		a = blkmat.New(blkmat.ParamsFor(s))
	case "sor":
		a = sor.New(sor.ParamsFor(s))
	case "ugray":
		a = ugray.New(ugray.ParamsFor(s))
	case "water":
		a = water.New(water.ParamsFor(s))
	case "locus":
		a = locus.New(locus.ParamsFor(s))
	case "mp3d":
		a = mp3d.New(mp3d.ParamsFor(s))
	case "gather":
		a = gather.New(gather.ParamsFor(s))
	case "hashjoin":
		a = hashjoin.New(hashjoin.ParamsFor(s))
	case "spmv":
		a = spmv.New(spmv.ParamsFor(s))
	default:
		return nil, fmt.Errorf("apps: unknown application %q (have %v)", name, AllNames())
	}
	if tp, ok := tableProcs[name]; ok {
		a.TableProcs = tp[s]
	}
	return a, nil
}

// MustNew is New that panics on an unknown name.
func MustNew(name string, s app.Scale) *app.App {
	a, err := New(name, s)
	if err != nil {
		panic(err)
	}
	return a
}

// All builds the paper's benchmark set at the given scale.
func All(s app.Scale) []*app.App {
	return build(Names(), s)
}

// AllIrregular builds the irregular kernel set at the given scale.
func AllIrregular(s app.Scale) []*app.App {
	return build(IrregularNames(), s)
}

func build(names []string, s app.Scale) []*app.App {
	out := make([]*app.App, 0, len(names))
	for _, n := range names {
		out = append(out, MustNew(n, s))
	}
	return out
}
