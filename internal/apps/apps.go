// Package apps is the registry of the paper's seven benchmark
// applications (Table 1), instantiated at a chosen problem scale.
package apps

import (
	"fmt"

	"mtsim/internal/app"
	"mtsim/internal/apps/blkmat"
	"mtsim/internal/apps/locus"
	"mtsim/internal/apps/mp3d"
	"mtsim/internal/apps/sieve"
	"mtsim/internal/apps/sor"
	"mtsim/internal/apps/ugray"
	"mtsim/internal/apps/water"
)

// Names lists the applications in the paper's Table 1 order.
func Names() []string {
	return []string{"sieve", "blkmat", "sor", "ugray", "water", "locus", "mp3d"}
}

// tableProcs is the processor count at which each application's
// paper-style table rows are measured at each scale — as in the paper,
// chosen just before the fixed problem size runs out of parallelism. The
// water entries divide the molecule count evenly (49, 125, 343), which
// its static load balancing rewards (§3.2).
var tableProcs = map[string][3]int{
	"sieve":  {8, 16, 16},
	"blkmat": {6, 16, 16},
	"sor":    {4, 8, 16},
	"ugray":  {8, 16, 16},
	"water":  {7, 7, 49},
	"locus":  {8, 16, 16},
	"mp3d":   {8, 16, 32},
}

// New builds one application by name at the given scale.
func New(name string, s app.Scale) (*app.App, error) {
	var a *app.App
	switch name {
	case "sieve":
		a = sieve.New(sieve.ParamsFor(s))
	case "blkmat":
		a = blkmat.New(blkmat.ParamsFor(s))
	case "sor":
		a = sor.New(sor.ParamsFor(s))
	case "ugray":
		a = ugray.New(ugray.ParamsFor(s))
	case "water":
		a = water.New(water.ParamsFor(s))
	case "locus":
		a = locus.New(locus.ParamsFor(s))
	case "mp3d":
		a = mp3d.New(mp3d.ParamsFor(s))
	default:
		return nil, fmt.Errorf("apps: unknown application %q (have %v)", name, Names())
	}
	if tp, ok := tableProcs[name]; ok {
		a.TableProcs = tp[s]
	}
	return a, nil
}

// MustNew is New that panics on an unknown name.
func MustNew(name string, s app.Scale) *app.App {
	a, err := New(name, s)
	if err != nil {
		panic(err)
	}
	return a
}

// All builds the full benchmark set at the given scale.
func All(s app.Scale) []*app.App {
	names := Names()
	out := make([]*app.App, 0, len(names))
	for _, n := range names {
		out = append(out, MustNew(n, s))
	}
	return out
}
