// Package hashjoin builds an irregular two-phase hash join. Threads
// first partition a build relation into shared hash buckets —
// claiming slots with Fetch-and-Add so concurrent inserts into the
// same bucket never collide — then cross a sense-reversing barrier
// and probe the table with a second relation, summing the payloads of
// matching keys into a global accumulator.
//
// The probe phase is where the irregularity lives: the bucket index
// is a hash of a loaded key, so the chain of loads (key → bucket
// count → bucket entries) is address-dependent and lands on
// pseudo-random memory modules, and bucket occupancies are skewed by
// the random key distribution. Insertion order inside a bucket varies
// with thread interleaving, but the join sum is order-independent, so
// the checked result is deterministic for any schedule.
package hashjoin

import (
	"fmt"

	"mtsim/internal/app"
	"mtsim/internal/machine"
	"mtsim/internal/par"
	"mtsim/internal/prog"
	"mtsim/internal/rng"
)

// Params sizes the problem.
type Params struct {
	// Build and Probe are the relation cardinalities.
	Build int64
	Probe int64
	// Buckets is the hash-table width (keys hash with key % Buckets).
	Buckets int64
	// Keys is the key universe; smaller values mean more matches and
	// more skew.
	Keys int64
	// Chunk is the self-scheduling chunk for both phases.
	Chunk int64
	// Seed drives the deterministic relation generator.
	Seed uint64
}

// ParamsFor returns the problem size for a scale.
func ParamsFor(s app.Scale) Params {
	switch s {
	case app.Quick:
		return Params{Build: 512, Probe: 1024, Buckets: 64, Keys: 256, Chunk: 16, Seed: 17}
	case app.Medium:
		return Params{Build: 4096, Probe: 8192, Buckets: 256, Keys: 2048, Chunk: 32, Seed: 17}
	default:
		return Params{Build: 16384, Probe: 65536, Buckets: 1024, Keys: 8192, Chunk: 64, Seed: 17}
	}
}

func (p Params) normalized() Params {
	if p.Build < 8 {
		p.Build = 8
	}
	if p.Probe < 8 {
		p.Probe = 8
	}
	if p.Buckets < 2 {
		p.Buckets = 2
	}
	if p.Keys < 2 {
		p.Keys = 2
	}
	if p.Chunk < 1 {
		p.Chunk = 1
	}
	return p
}

// New builds the application.
func New(p Params) *app.App {
	p = p.normalized()
	r := rng.New(p.Seed)
	rkey := make([]int64, p.Build)
	rpay := make([]int64, p.Build)
	for i := range rkey {
		rkey[i] = r.Intn(p.Keys)
		rpay[i] = r.Intn(1000)
	}
	skey := make([]int64, p.Probe)
	for j := range skey {
		skey[j] = r.Intn(p.Keys)
	}

	// Bucket capacity is the exact maximum occupancy, computed from the
	// generated keys, so the shared layout is as tight as a real
	// partitioned join and overflow is impossible by construction.
	occ := make([]int64, p.Buckets)
	cap := int64(1)
	for _, k := range rkey {
		b := k % p.Buckets
		occ[b]++
		if occ[b] > cap {
			cap = occ[b]
		}
	}

	b := prog.NewBuilder("hashjoin")
	rkeyS := b.Shared("rkey", p.Build)
	rpayS := b.Shared("rpay", p.Build)
	skeyS := b.Shared("skey", p.Probe)
	bkeyS := b.Shared("bkey", p.Buckets*cap)
	bpayS := b.Shared("bpay", p.Buckets*cap)
	bcntS := b.Shared("bcnt", p.Buckets)
	bar := par.AllocBarrier(b, "bar")
	sctr1 := b.Shared("sctr1", 1)
	sctr2 := b.Shared("sctr2", 1)
	acc := b.Shared("acc", 1)

	// Registers: r4 relation base, r5 payload base, r6 phase bound,
	// r7 chunk start, r8 counter pointer, r9/r10 scratch, r11 chunk
	// end, r12 probe-phase local sum, r13 tuple index, r14 key,
	// r15 bucket, r16 address scratch, r17 slot / bucket count,
	// r18 payload / scan index, r19 bucket count (hash modulus),
	// r20 bucket capacity, r21 bcnt base, r22 bkey base, r23 bpay
	// base, r24 scan scratch, r25 barrier base, r26 barrier sense
	// (dedicated, starts 0).
	b.Li(19, p.Buckets)
	b.Li(20, cap)
	b.Li(21, bcntS.Base)
	b.Li(22, bkeyS.Base)
	b.Li(23, bpayS.Base)
	b.Li(25, bar.Base)

	// Build phase: partition rkey/rpay into the buckets.
	b.Li(4, rkeyS.Base)
	b.Li(5, rpayS.Base)
	b.Li(6, p.Build)
	b.Label("build.seg")
	b.Li(8, sctr1.Base)
	par.SelfSchedule(b, 8, 0, p.Chunk, 7, 10)
	b.Bge(7, 6, "build.done")
	b.Addi(11, 7, p.Chunk)
	b.Blt(11, 6, "build.eok")
	b.Mov(11, 6)
	b.Label("build.eok")
	b.Mov(13, 7)
	b.Label("build.loop")
	b.Bge(13, 11, "build.seg")
	b.Add(16, 4, 13)
	b.LwS(14, 16, 0) // k = rkey[i]
	b.Rem(15, 14, 19)
	b.Add(10, 21, 15)
	b.Li(9, 1)
	b.Faa(17, 10, 0, 9) // slot = bcnt[b]++
	b.Mul(9, 15, 20)
	b.Add(9, 9, 17) // idx = b*cap + slot
	b.Add(10, 22, 9)
	b.SwS(14, 10, 0) // bkey[idx] = k
	b.Add(16, 5, 13)
	b.LwS(18, 16, 0) // pay = rpay[i]
	b.Add(10, 23, 9)
	b.SwS(18, 10, 0) // bpay[idx] = pay
	b.Addi(13, 13, 1)
	b.J("build.loop")
	b.Label("build.done")

	// Every insert must land before any probe reads the table.
	par.Barrier(b, 25, 0, 26, 9, 10)

	// Probe phase: scan the matching bucket for each probe key.
	b.Li(4, skeyS.Base)
	b.Li(6, p.Probe)
	b.Label("probe.seg")
	b.Li(8, sctr2.Base)
	par.SelfSchedule(b, 8, 0, p.Chunk, 7, 10)
	b.Bge(7, 6, "probe.done")
	b.Addi(11, 7, p.Chunk)
	b.Blt(11, 6, "probe.eok")
	b.Mov(11, 6)
	b.Label("probe.eok")
	b.Li(12, 0)
	b.Mov(13, 7)
	b.Label("probe.loop")
	b.Bge(13, 11, "probe.flush")
	b.Add(16, 4, 13)
	b.LwS(14, 16, 0) // k = skey[j]
	b.Rem(15, 14, 19)
	b.Add(10, 21, 15)
	b.LwS(17, 10, 0) // n = bcnt[b]
	b.Mul(9, 15, 20) // idx = b*cap
	b.Li(18, 0)
	b.Label("probe.scan")
	b.Bge(18, 17, "probe.next")
	b.Add(10, 22, 9)
	b.Add(10, 10, 18)
	b.LwS(24, 10, 0) // bkey[idx+s]
	b.Bne(24, 14, "probe.skip")
	b.Add(10, 23, 9)
	b.Add(10, 10, 18)
	b.LwS(24, 10, 0) // bpay[idx+s]
	b.Add(12, 12, 24)
	b.Label("probe.skip")
	b.Addi(18, 18, 1)
	b.J("probe.scan")
	b.Label("probe.next")
	b.Addi(13, 13, 1)
	b.J("probe.loop")
	b.Label("probe.flush")
	b.Li(8, acc.Base)
	b.Faa(9, 8, 0, 12)
	b.J("probe.seg")
	b.Label("probe.done")
	b.Halt()

	raw := b.MustBuild()
	want := hostJoin(rkey, rpay, skey)

	return &app.App{
		Name:        "hashjoin",
		Description: "build/probe hash join with Fetch-and-Add slot claims",
		Problem:     fmt.Sprintf("%d build x %d probe, %d buckets", p.Build, p.Probe, p.Buckets),
		Raw:         raw,
		TableProcs:  16,
		Init: func(sh *machine.Shared) {
			for i := int64(0); i < p.Build; i++ {
				sh.SetWordAt("rkey", i, rkey[i])
				sh.SetWordAt("rpay", i, rpay[i])
			}
			for j := int64(0); j < p.Probe; j++ {
				sh.SetWordAt("skey", j, skey[j])
			}
		},
		Check: func(sh *machine.Shared) error {
			if got := sh.WordAt("acc", 0); got != want {
				return fmt.Errorf("hashjoin: join sum %d, want %d", got, want)
			}
			for bk := int64(0); bk < p.Buckets; bk++ {
				if got := sh.WordAt("bcnt", bk); got != occ[bk] {
					return fmt.Errorf("hashjoin: bucket %d holds %d entries, want %d", bk, got, occ[bk])
				}
			}
			return nil
		},
	}
}

// hostJoin is the reference join: for every probe key, the sum of the
// payloads of all matching build tuples. The bucket structure cannot
// change the answer, so the mirror skips it.
func hostJoin(rkey, rpay, skey []int64) int64 {
	paySum := make(map[int64]int64, len(rkey))
	for i, k := range rkey {
		paySum[k] += rpay[i]
	}
	var sum int64
	for _, k := range skey {
		sum += paySum[k]
	}
	return sum
}
