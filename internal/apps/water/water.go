// Package water builds a stand-in for the SPLASH water molecular-dynamics
// code (Table 1: 343 molecules, 2 iterations).
//
// Substitution (see DESIGN.md §2): the original computes O(n^2/2)
// pairwise intermolecular forces with a static distribution of molecules
// over threads, which is why the paper's Figure 2 shows water's
// efficiency jumping when the thread count divides 343 evenly. Our kernel
// keeps exactly that structure: each thread owns a contiguous block of
// molecules; each force step evaluates a cutoff-tested inverse-square
// interaction against the n/2 following molecules (wrapping), with the
// cutoff branch providing the paper's "large variations in run-lengths";
// a barrier separates the force and position-update phases of each of the
// two iterations.
package water

import (
	"fmt"

	"mtsim/internal/app"
	"mtsim/internal/isa"
	"mtsim/internal/machine"
	"mtsim/internal/par"
	"mtsim/internal/prog"
	"mtsim/internal/rng"
)

// molCells is the padded molecule record size (x, y, z, pad) so records
// align with memory lines.
const molCells = 4

// Params sizes the problem.
type Params struct {
	Molecules int64
	Iters     int64
	// Cutoff2 is the squared interaction cutoff radius.
	Cutoff2 float64
	Dt      float64
	Seed    uint64
}

// ParamsFor returns the problem size for a scale. Full is the paper's
// 343 molecules, 2 iterations (the paper says 345 in Table 1 and 343 in
// the text; 343 = 7^3 matches the load-balancing discussion).
func ParamsFor(s app.Scale) Params {
	switch s {
	case app.Quick:
		return Params{Molecules: 98, Iters: 2, Cutoff2: 45, Dt: 0.004, Seed: 4}
	case app.Medium:
		return Params{Molecules: 245, Iters: 2, Cutoff2: 45, Dt: 0.004, Seed: 4}
	default:
		return Params{Molecules: 343, Iters: 2, Cutoff2: 45, Dt: 0.004, Seed: 4}
	}
}

func (p Params) normalized() Params {
	if p.Molecules < 4 {
		p.Molecules = 4
	}
	if p.Iters < 1 {
		p.Iters = 1
	}
	if p.Cutoff2 <= 0 {
		p.Cutoff2 = 45
	}
	if p.Dt == 0 {
		p.Dt = 0.004
	}
	return p
}

// New builds the application.
func New(p Params) *app.App {
	p = p.normalized()
	n := p.Molecules
	halfn := n / 2

	b := prog.NewBuilder("water")
	pos := b.Shared("pos", n*molCells)
	vel := b.Shared("vel", n*molCells)
	frc := b.Shared("frc", n*molCells)
	bar := par.AllocBarrier(b, "bar")

	const rSense = 20
	// r4 pos base, r5 vel base, r6 frc base, r7 lo, r8 hi, r9 i, r10 k,
	// r11 j, r12 addr, r13 n, r14/r15 scratch, r16 n/2, r17 bar base,
	// r18 iter.
	// f1..f3 xi yi zi, f4..f6 dx dy dz, f7..f9 force accum, f10 rc2,
	// f11 dt, f12 eps, f13 1.0, f14/f15 scratch.
	b.Li(4, pos.Base)
	b.Li(5, vel.Base)
	b.Li(6, frc.Base)
	b.Li(13, n)
	b.Li(16, halfn)
	b.Li(17, bar.Base)
	b.LiF(10, p.Cutoff2, 14)
	b.LiF(11, p.Dt, 14)
	b.LiF(12, 0.03125, 14) // softening epsilon
	b.LiF(13, 1.0, 14)
	// Static block decomposition: chunk = ceil(n / nthreads).
	b.Li(14, n)
	b.Add(14, 14, isa.RNth)
	b.Addi(14, 14, -1)
	b.Div(14, 14, isa.RNth)
	b.Mul(7, 14, isa.RTid) // lo
	b.Add(8, 7, 14)        // hi
	b.Blt(8, 13, "hiok")
	b.Mov(8, 13)
	b.Label("hiok")

	b.Li(18, 0)
	b.Label("iter")

	// Force phase.
	b.Mov(9, 7)
	b.Label("force.i")
	b.Bge(9, 8, "force.done")
	b.Slli(12, 9, 2)
	b.Add(12, 12, 4)
	b.FlwS(1, 12, 0) // xi
	b.FlwS(2, 12, 1) // yi
	b.FlwS(3, 12, 2) // zi
	b.LiF(7, 0.0, 14)
	b.Fmov(8, 7)
	b.Fmov(9, 7)
	b.Li(10, 1)
	b.Label("force.k")
	b.Add(11, 9, 10) // j = i + k
	b.Blt(11, 13, "nowrap")
	b.Sub(11, 11, 13)
	b.Label("nowrap")
	b.Slli(12, 11, 2)
	b.Add(12, 12, 4)
	b.FlwS(4, 12, 0)
	b.FlwS(5, 12, 1)
	b.FlwS(6, 12, 2)
	b.Fsub(4, 1, 4) // dx
	b.Fsub(5, 2, 5) // dy
	b.Fsub(6, 3, 6) // dz
	b.Fmul(14, 4, 4)
	b.Fmul(15, 5, 5)
	b.Fadd(14, 14, 15)
	b.Fmul(15, 6, 6)
	b.Fadd(14, 14, 15) // r^2
	b.Flt(14, 10, 14)  // rc2 < r2 -> outside cutoff
	b.Bnez(14, "force.skip")
	b.Fadd(15, 14, 12) // r2 + eps (f14 still holds r2; Flt wrote integer r14)
	b.Fdiv(15, 13, 15) // w = 1 / (r2 + eps)
	b.Fmul(4, 4, 15)
	b.Fadd(7, 7, 4)
	b.Fmul(5, 5, 15)
	b.Fadd(8, 8, 5)
	b.Fmul(6, 6, 15)
	b.Fadd(9, 9, 6)
	b.Label("force.skip")
	b.Addi(10, 10, 1)
	b.Bge(16, 10, "force.k") // while k <= n/2
	b.Slli(12, 9, 2)
	b.Add(12, 12, 6)
	b.FswS(7, 12, 0)
	b.FswS(8, 12, 1)
	b.FswS(9, 12, 2)
	b.Addi(9, 9, 1)
	b.J("force.i")
	b.Label("force.done")
	par.Barrier(b, 17, 0, rSense, 14, 15)

	// Update phase: vel += frc*dt; pos += vel*dt.
	b.Mov(9, 7)
	b.Label("upd.i")
	b.Bge(9, 8, "upd.done")
	b.Slli(12, 9, 2)
	b.Add(14, 12, 6)
	b.FlwS(1, 14, 0)
	b.FlwS(2, 14, 1)
	b.FlwS(3, 14, 2)
	b.Add(14, 12, 5)
	b.FlwS(4, 14, 0)
	b.FlwS(5, 14, 1)
	b.FlwS(6, 14, 2)
	b.Fmul(1, 1, 11)
	b.Fadd(4, 4, 1)
	b.Fmul(2, 2, 11)
	b.Fadd(5, 5, 2)
	b.Fmul(3, 3, 11)
	b.Fadd(6, 6, 3)
	b.FswS(4, 14, 0)
	b.FswS(5, 14, 1)
	b.FswS(6, 14, 2)
	b.Add(14, 12, 4)
	b.FlwS(1, 14, 0)
	b.FlwS(2, 14, 1)
	b.FlwS(3, 14, 2)
	b.Fmul(7, 4, 11)
	b.Fadd(1, 1, 7)
	b.Fmul(7, 5, 11)
	b.Fadd(2, 2, 7)
	b.Fmul(7, 6, 11)
	b.Fadd(3, 3, 7)
	b.FswS(1, 14, 0)
	b.FswS(2, 14, 1)
	b.FswS(3, 14, 2)
	b.Addi(9, 9, 1)
	b.J("upd.i")
	b.Label("upd.done")
	par.Barrier(b, 17, 0, rSense, 14, 15)

	b.Addi(18, 18, 1)
	b.Slti(14, 18, p.Iters)
	b.Bnez(14, "iter")
	b.Halt()
	raw := b.MustBuild()

	// Host-side initial state and exact-order reference.
	px := make([]float64, n*3)
	pv := make([]float64, n*3)
	r := rng.New(p.Seed)
	for i := int64(0); i < n; i++ {
		for d := 0; d < 3; d++ {
			px[i*3+int64(d)] = r.Range(0, 12)
			pv[i*3+int64(d)] = r.Range(-0.5, 0.5)
		}
	}
	wpos := append([]float64(nil), px...)
	wvel := append([]float64(nil), pv...)
	wfrc := make([]float64, n*3)
	for it := int64(0); it < p.Iters; it++ {
		for i := int64(0); i < n; i++ {
			var fx, fy, fz float64
			xi, yi, zi := wpos[i*3], wpos[i*3+1], wpos[i*3+2]
			for k := int64(1); k <= halfn; k++ {
				j := i + k
				if j >= n {
					j -= n
				}
				dx := xi - wpos[j*3]
				dy := yi - wpos[j*3+1]
				dz := zi - wpos[j*3+2]
				r2 := dx*dx + dy*dy
				r2 += dz * dz
				if p.Cutoff2 < r2 {
					continue
				}
				w := 1.0 / (r2 + 0.03125)
				fx += dx * w
				fy += dy * w
				fz += dz * w
			}
			wfrc[i*3], wfrc[i*3+1], wfrc[i*3+2] = fx, fy, fz
		}
		for i := int64(0); i < n*3; i++ {
			wvel[i] += wfrc[i] * p.Dt
			wpos[i] += wvel[i] * p.Dt
		}
	}

	return &app.App{
		Name:        "water",
		Description: "molecular dynamics of a water-like system (kernel substitute)",
		Problem:     fmt.Sprintf("%d molecules, %d iterations", n, p.Iters),
		Raw:         raw,
		TableProcs:  49,
		Init: func(sh *machine.Shared) {
			for i := int64(0); i < n; i++ {
				for d := int64(0); d < 3; d++ {
					sh.SetFloatAt("pos", i*molCells+d, px[i*3+d])
					sh.SetFloatAt("vel", i*molCells+d, pv[i*3+d])
				}
			}
		},
		Check: func(sh *machine.Shared) error {
			for i := int64(0); i < n; i++ {
				for d := int64(0); d < 3; d++ {
					if got := sh.FloatAt("pos", i*molCells+d); got != wpos[i*3+d] {
						return fmt.Errorf("water: pos[%d][%d] = %g, want %g", i, d, got, wpos[i*3+d])
					}
					if got := sh.FloatAt("vel", i*molCells+d); got != wvel[i*3+d] {
						return fmt.Errorf("water: vel[%d][%d] = %g, want %g", i, d, got, wvel[i*3+d])
					}
				}
			}
			return nil
		},
	}
}
