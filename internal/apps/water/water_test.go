package water_test

import (
	"testing"

	"mtsim/internal/apps/water"
	"mtsim/internal/machine"
)

func TestCorrectAtAwkwardShapes(t *testing.T) {
	for _, p := range []water.Params{
		{Molecules: 5, Iters: 1, Cutoff2: 100, Dt: 0.01, Seed: 1},
		{Molecules: 31, Iters: 3, Cutoff2: 20, Dt: 0.002, Seed: 2},
	} {
		a := water.New(p)
		if _, err := a.Run(machine.Config{Procs: 3, Threads: 2, Model: machine.SwitchOnMiss, Latency: 40}); err != nil {
			t.Errorf("%+v: %v", p, err)
		}
	}
}

// TestStaticBalanceDivisibility: the paper's Figure 2 observation — water
// runs markedly better when the processor count divides the molecule
// count evenly, because its load balancing is static.
func TestStaticBalanceDivisibility(t *testing.T) {
	a := water.New(water.ParamsFor(0)) // 98 molecules
	base, err := a.Run(machine.Config{Procs: 1, Threads: 1, Model: machine.Ideal})
	if err != nil {
		t.Fatal(err)
	}
	even, err := a.Run(machine.Config{Procs: 14, Threads: 1, Model: machine.Ideal}) // 98 = 14*7
	if err != nil {
		t.Fatal(err)
	}
	odd, err := a.Run(machine.Config{Procs: 15, Threads: 1, Model: machine.Ideal})
	if err != nil {
		t.Fatal(err)
	}
	effEven, effOdd := even.Efficiency(base.Cycles), odd.Efficiency(base.Cycles)
	if effEven <= effOdd {
		t.Errorf("divisible procs eff %.3f <= non-divisible %.3f", effEven, effOdd)
	}
	if effEven < 0.85 {
		t.Errorf("even-split efficiency = %.2f, want >= 0.85", effEven)
	}
}

// TestGroupingBenefits: water's three coordinate loads group; the paper
// lists water among the applications that "benefited the most" (§5.1).
func TestGroupingBenefits(t *testing.T) {
	a := water.New(water.ParamsFor(0))
	rl, err := a.Run(machine.Config{
		Procs: 7, Threads: 4, Model: machine.SwitchOnLoad,
		Latency: 200, CollectRunLengths: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	re, err := a.Run(machine.Config{
		Procs: 7, Threads: 4, Model: machine.ExplicitSwitch,
		Latency: 200, CollectRunLengths: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if re.GroupingFactor() < 2.0 {
		t.Errorf("grouping = %.2f, want >= 2 (coordinate triples)", re.GroupingFactor())
	}
	if re.TakenSwitches*3 > rl.TakenSwitches*2 {
		t.Errorf("switches %d -> %d: want at least a third eliminated", rl.TakenSwitches, re.TakenSwitches)
	}
	// The cutoff branch makes run-lengths vary widely (§4.1): both very
	// short and very long runs must be present under switch-on-load.
	if rl.RunLengths.Max < 8*rl.RunLengths.Min {
		t.Errorf("run-length spread %d..%d too uniform", rl.RunLengths.Min, rl.RunLengths.Max)
	}
}
