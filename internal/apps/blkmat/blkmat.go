// Package blkmat builds the paper's blocked matrix multiply (Table 1:
// 200 x 200 matrices).
//
// Threads self-schedule C blocks with Fetch-and-Add. For each C block the
// thread walks the K block row/column, copying the A and B blocks into
// thread-local memory with paired Load-Doubles, multiplying locally, and
// finally storing the C block back with paired Store-Doubles. The private
// copies are why the paper singles blkmat out for its "exceptionally high
// mean run-length" (§4.1): almost all cycles go to the local compute
// loop, which performs no shared accesses at all.
package blkmat

import (
	"fmt"
	"math"

	"mtsim/internal/app"
	"mtsim/internal/machine"
	"mtsim/internal/prog"
	"mtsim/internal/rng"
)

// Params sizes the problem: N x N matrices in BS x BS blocks.
type Params struct {
	N  int64
	BS int64
	// Seed for the random integer-valued matrices.
	Seed uint64
}

// ParamsFor returns the problem size for a scale. Full is the paper's
// 200x200 (rounded up to a multiple of the block size).
func ParamsFor(s app.Scale) Params {
	switch s {
	case app.Quick:
		return Params{N: 48, BS: 8, Seed: 1}
	case app.Medium:
		return Params{N: 96, BS: 8, Seed: 1}
	default:
		return Params{N: 208, BS: 16, Seed: 1}
	}
}

func (p Params) normalized() Params {
	if p.BS < 2 {
		p.BS = 2
	}
	if p.BS%2 == 1 {
		p.BS++
	}
	if p.N < p.BS {
		p.N = p.BS
	}
	if p.N%p.BS != 0 {
		p.N += p.BS - p.N%p.BS
	}
	return p
}

// New builds the application.
func New(p Params) *app.App {
	p = p.normalized()
	nb := p.N / p.BS
	bs := p.BS
	n := p.N

	b := prog.NewBuilder("blkmat")
	a := b.Shared("A", n*n)
	bm := b.Shared("B", n*n)
	c := b.Shared("C", n*n)
	tctr := b.Shared("tctr", 1)
	la := b.Local("la", bs*bs)
	lb := b.Local("lb", bs*bs)
	lc := b.Local("lc", bs*bs)

	// Register plan:
	//   r4  task counter base     r5  task id / scratch
	//   r6  bi*BS (row origin)    r7  bj*BS (col origin)
	//   r8  bk loop index         r9  shared src/dst pointer
	//   r10 local pointer         r11 inner row index
	//   r12 inner col/pair index  r13/r14 Ld pair
	//   r16 i  r17 j  r18 k       r19..r21 address scratch
	//   f1 accumulator, f2/f3 operands

	b.Label("task")
	b.Li(4, tctr.Base)
	b.Li(5, 1)
	b.Faa(5, 4, 0, 5) // t = next block task
	b.Li(19, nb*nb)
	b.Bge(5, 19, "done")
	b.Li(19, nb)
	b.Div(6, 5, 19)
	b.Rem(7, 5, 19)
	b.Muli(6, 6, bs) // row origin of C block
	b.Muli(7, 7, bs) // col origin of C block

	// Zero the local C accumulator block.
	b.Li(10, lc.Base)
	b.Li(11, 0)
	b.Li(12, bs*bs)
	b.Label("zero")
	b.Sw(0, 10, 0)
	b.Addi(10, 10, 1)
	b.Addi(11, 11, 1)
	b.Blt(11, 12, "zero")

	b.Li(8, 0) // bk
	b.Label("kblock")

	// Copy A block (rows 6..6+BS-1, cols bk*BS..): pairs via Load-Double.
	b.Muli(9, 8, bs) // bk*BS = column origin in A, row origin in B
	b.Li(11, 0)      // local row
	b.Label("copyA.row")
	b.Add(19, 6, 11) // global row = bi*BS + r
	b.Muli(19, 19, n)
	b.Add(19, 19, 9) // + bk*BS
	b.Li(20, a.Base)
	b.Add(19, 19, 20) // shared pointer
	b.Muli(10, 11, bs)
	b.Li(20, la.Base)
	b.Add(10, 10, 20) // local pointer
	b.Li(12, 0)
	b.Label("copyA.pair")
	b.LdS(13, 19, 0) // two matrix elements in one message
	b.Sd(13, 10, 0)
	b.Addi(19, 19, 2)
	b.Addi(10, 10, 2)
	b.Addi(12, 12, 2)
	b.Slti(21, 12, bs)
	b.Bnez(21, "copyA.pair")
	b.Addi(11, 11, 1)
	b.Slti(21, 11, bs)
	b.Bnez(21, "copyA.row")

	// Copy B block (rows bk*BS.., cols 7..7+BS-1).
	b.Li(11, 0)
	b.Label("copyB.row")
	b.Add(19, 9, 11) // global row = bk*BS + r
	b.Muli(19, 19, n)
	b.Add(19, 19, 7) // + bj*BS
	b.Li(20, bm.Base)
	b.Add(19, 19, 20)
	b.Muli(10, 11, bs)
	b.Li(20, lb.Base)
	b.Add(10, 10, 20)
	b.Li(12, 0)
	b.Label("copyB.pair")
	b.LdS(13, 19, 0)
	b.Sd(13, 10, 0)
	b.Addi(19, 19, 2)
	b.Addi(10, 10, 2)
	b.Addi(12, 12, 2)
	b.Slti(21, 12, bs)
	b.Bnez(21, "copyB.pair")
	b.Addi(11, 11, 1)
	b.Slti(21, 11, bs)
	b.Bnez(21, "copyB.row")

	// Local multiply: lc[i][j] += la[i][k] * lb[k][j].
	b.Li(16, 0)
	b.Label("mul.i")
	b.Li(17, 0)
	b.Label("mul.j")
	b.Muli(19, 16, bs)
	b.Add(19, 19, 17)
	b.Li(20, lc.Base)
	b.Add(19, 19, 20)
	b.Flw(1, 19, 0) // accumulator
	b.Li(18, 0)
	b.Label("mul.k")
	b.Muli(20, 16, bs)
	b.Add(20, 20, 18)
	b.Li(21, la.Base)
	b.Add(20, 20, 21)
	b.Flw(2, 20, 0)
	b.Muli(20, 18, bs)
	b.Add(20, 20, 17)
	b.Li(21, lb.Base)
	b.Add(20, 20, 21)
	b.Flw(3, 20, 0)
	b.Fmul(2, 2, 3)
	b.Fadd(1, 1, 2)
	b.Addi(18, 18, 1)
	b.Slti(21, 18, bs)
	b.Bnez(21, "mul.k")
	b.Fsw(1, 19, 0)
	b.Addi(17, 17, 1)
	b.Slti(21, 17, bs)
	b.Bnez(21, "mul.j")
	b.Addi(16, 16, 1)
	b.Slti(21, 16, bs)
	b.Bnez(21, "mul.i")

	b.Addi(8, 8, 1)
	b.Li(21, nb)
	b.Blt(8, 21, "kblock")

	// Write the C block back, pairs via Store-Double.
	b.Li(11, 0)
	b.Label("wb.row")
	b.Add(19, 6, 11)
	b.Muli(19, 19, n)
	b.Add(19, 19, 7)
	b.Li(20, c.Base)
	b.Add(19, 19, 20)
	b.Muli(10, 11, bs)
	b.Li(20, lc.Base)
	b.Add(10, 10, 20)
	b.Li(12, 0)
	b.Label("wb.pair")
	b.Ld(13, 10, 0)
	b.SdS(13, 19, 0)
	b.Addi(19, 19, 2)
	b.Addi(10, 10, 2)
	b.Addi(12, 12, 2)
	b.Slti(21, 12, bs)
	b.Bnez(21, "wb.pair")
	b.Addi(11, 11, 1)
	b.Slti(21, 11, bs)
	b.Bnez(21, "wb.row")

	b.J("task")
	b.Label("done")
	b.Halt()
	raw := b.MustBuild()

	// Reference result: small random integers keep float products exact.
	av := make([]float64, n*n)
	bv := make([]float64, n*n)
	r := rng.New(p.Seed)
	for i := range av {
		av[i] = float64(r.Intn(9) - 4)
	}
	for i := range bv {
		bv[i] = float64(r.Intn(9) - 4)
	}
	want := make([]float64, n*n)
	// Accumulate in the same k order as the simulated kernel so float
	// results match exactly.
	for i := int64(0); i < n; i++ {
		for k := int64(0); k < n; k++ {
			aik := av[i*n+k]
			for j := int64(0); j < n; j++ {
				want[i*n+j] += aik * bv[k*n+j]
			}
		}
	}

	return &app.App{
		Name:        "blkmat",
		Description: "blocked matrix multiply",
		Problem:     fmt.Sprintf("%d x %d matrices, %d x %d blocks", n, n, bs, bs),
		Raw:         raw,
		TableProcs:  16,
		Init: func(sh *machine.Shared) {
			for i := int64(0); i < n*n; i++ {
				sh.SetFloatAt("A", i, av[i])
				sh.SetFloatAt("B", i, bv[i])
			}
		},
		Check: func(sh *machine.Shared) error {
			for i := int64(0); i < n*n; i++ {
				if got := sh.FloatAt("C", i); got != want[i] {
					return fmt.Errorf("blkmat: C[%d] = %g, want %g", i, got, want[i])
				}
			}
			return nil
		},
	}
}

var _ = math.Abs // keep math available for future tolerance checks
