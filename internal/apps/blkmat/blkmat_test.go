package blkmat_test

import (
	"testing"

	"mtsim/internal/apps/blkmat"
	"mtsim/internal/machine"
)

func TestCorrectAtAwkwardShapes(t *testing.T) {
	for _, p := range []blkmat.Params{
		{N: 8, BS: 4, Seed: 3},
		{N: 20, BS: 4, Seed: 9},
		{N: 17, BS: 6, Seed: 1}, // N not a multiple of BS: normalized up
	} {
		a := blkmat.New(p)
		if _, err := a.Run(machine.Config{Procs: 2, Threads: 3, Model: machine.ExplicitSwitch, Latency: 50}); err != nil {
			t.Errorf("%+v: %v", p, err)
		}
	}
}

// TestRunLengthCharacter: blkmat "stands out because of the exceptionally
// high mean run-length ... because it makes private copies of shared
// data" (§4.1). The local compute loop performs no shared accesses, so
// the mean run-length must dwarf the stencil codes'.
func TestRunLengthCharacter(t *testing.T) {
	a := blkmat.New(blkmat.ParamsFor(0))
	res, err := a.Run(machine.Config{
		Procs: 4, Threads: 2, Model: machine.SwitchOnLoad,
		Latency: 200, CollectRunLengths: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m := res.MeanRunLength(); m < 100 {
		t.Errorf("mean run-length = %.1f, want >= 100 (private copies)", m)
	}
}

// TestFewThreadsSuffice: with such long run-lengths, a low multithreading
// level must already hide a 200-cycle latency (the paper's Table 3 shows
// blkmat reaching high efficiency at the smallest levels).
func TestFewThreadsSuffice(t *testing.T) {
	a := blkmat.New(blkmat.ParamsFor(0))
	base, err := a.Run(machine.Config{Procs: 1, Threads: 1, Model: machine.Ideal})
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Run(machine.Config{Procs: 4, Threads: 3, Model: machine.SwitchOnLoad, Latency: 200})
	if err != nil {
		t.Fatal(err)
	}
	if eff := res.Efficiency(base.Cycles); eff < 0.75 {
		t.Errorf("efficiency at 3 threads = %.2f, want >= 0.75", eff)
	}
}

// TestLoadDoubleUsed: the copy loops must move data with Load/Store-
// Double messages (the instructions the paper added to cut message
// counts), which shows up as LdS/SdS being the dominant shared ops.
func TestLoadDoubleUsed(t *testing.T) {
	a := blkmat.New(blkmat.ParamsFor(0))
	res, err := a.Run(machine.Config{Procs: 1, Threads: 1, Model: machine.Ideal})
	if err != nil {
		t.Fatal(err)
	}
	if res.SharedLoads == 0 || res.SharedStores == 0 {
		t.Fatal("no shared traffic")
	}
	// Each element pair moves in one message: loads ~= N^2*(2*NB)/2
	// for A and B copies; just check the double-move economy holds:
	// bandwidth bits per load well above a single-word reply.
	perLoad := float64(res.Traffic.Bits()) / float64(res.SharedLoads+res.SharedStores)
	if perLoad < 100 {
		t.Errorf("bits per shared access = %.0f, want > 100 (double-word messages)", perLoad)
	}
}
