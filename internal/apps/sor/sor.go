// Package sor builds the paper's successive-over-relaxation solver for
// Laplace's equation (Table 1: 192 x 192 grid).
//
// The grid is solved with red-black SOR: within one color every update is
// independent (its four neighbours are the other color), so the parallel
// result is deterministic. Rows are distributed statically in contiguous
// bands, with a barrier after each half-sweep. The inner loop is the
// paper's Figure 4 example: five shared loads (north, south, west, east,
// center) followed by the update — exactly the back-to-back load pattern
// whose 1-2 cycle run-lengths cripple switch-on-load (§4.2) and which the
// grouping optimizer turns into one five-load group per point (§5.1).
package sor

import (
	"fmt"

	"mtsim/internal/app"
	"mtsim/internal/isa"
	"mtsim/internal/machine"
	"mtsim/internal/par"
	"mtsim/internal/prog"
	"mtsim/internal/rng"
)

// Params sizes the problem: an N x N interior with a fixed boundary,
// swept Iters times (each iteration updates both colors).
type Params struct {
	N     int64
	Iters int64
	Omega float64
	Seed  uint64
}

// ParamsFor returns the problem size for a scale. Full is the paper's
// 192 x 192 grid.
func ParamsFor(s app.Scale) Params {
	switch s {
	case app.Quick:
		return Params{N: 64, Iters: 3, Omega: 1.5, Seed: 2}
	case app.Medium:
		return Params{N: 128, Iters: 6, Omega: 1.5, Seed: 2}
	default:
		return Params{N: 192, Iters: 30, Omega: 1.5, Seed: 2}
	}
}

func (p Params) normalized() Params {
	if p.N < 4 {
		p.N = 4
	}
	if p.Iters < 1 {
		p.Iters = 1
	}
	if p.Omega == 0 {
		p.Omega = 1.5
	}
	return p
}

// New builds the application.
func New(p Params) *app.App {
	p = p.normalized()
	n := p.N
	s := n + 2 // stride including boundary

	b := prog.NewBuilder("sor")
	grid := b.Shared("grid", s*s)
	bar := par.AllocBarrier(b, "bar")

	const rSense = 20
	b.Li(4, grid.Base)
	b.Li(5, s)
	// Static band decomposition: rows = ceil(N / nthreads).
	b.Li(14, n)
	b.Add(15, 14, isa.RNth)
	b.Addi(15, 15, -1)
	b.Div(15, 15, isa.RNth) // rows per thread
	b.Mul(6, 15, isa.RTid)
	b.Addi(6, 6, 1) // lo = 1 + tid*rows
	b.Add(7, 6, 15) // hi
	b.Li(13, n+1)
	b.Blt(7, 13, "hiok")
	b.Mov(7, 13)
	b.Label("hiok")
	b.LiF(10, p.Omega, 16)
	b.LiF(11, 0.25, 16)
	b.Li(17, bar.Base)

	b.Li(8, 0) // iteration
	b.Label("iter")
	b.Li(9, 0) // color
	b.Label("color")
	b.Mov(10, 6) // i = lo
	b.Label("row")
	b.Bge(10, 7, "rows.done")
	// j0 = 1 + ((i + 1 + color) & 1): first point of this color in row i.
	b.Add(14, 10, 9)
	b.Addi(14, 14, 1)
	b.Andi(14, 14, 1)
	b.Addi(11, 14, 1)
	b.Mul(12, 10, 5)
	b.Add(12, 12, 4) // row base address
	b.Label("pt")
	b.Bge(11, 13, "row.done")
	b.Add(14, 12, 11)
	// The Figure 4 inner loop: five shared loads, then the update.
	b.FlwS(1, 14, -s) // north
	b.FlwS(2, 14, s)  // south
	b.FlwS(3, 14, -1) // west
	b.FlwS(4, 14, 1)  // east
	b.FlwS(5, 14, 0)  // center
	b.Fadd(1, 1, 2)
	b.Fadd(3, 3, 4)
	b.Fadd(1, 1, 3)
	b.Fmul(1, 1, 11) // avg = 0.25 * (n+s+w+e)
	b.Fsub(1, 1, 5)
	b.Fmul(1, 1, 10) // omega * (avg - u)
	b.Fadd(1, 5, 1)
	b.FswS(1, 14, 0)
	b.Addi(11, 11, 2)
	b.J("pt")
	b.Label("row.done")
	b.Addi(10, 10, 1)
	b.J("row")
	b.Label("rows.done")
	par.Barrier(b, 17, 0, rSense, 14, 15)
	b.Addi(9, 9, 1)
	b.Slti(14, 9, 2)
	b.Bnez(14, "color")
	b.Addi(8, 8, 1)
	b.Slti(14, 8, p.Iters)
	b.Bnez(14, "iter")
	b.Halt()
	raw := b.MustBuild()

	// Host-side initial grid and reference sweep, mirroring the kernel's
	// float operation order exactly.
	initGrid := make([]float64, s*s)
	r := rng.New(p.Seed)
	for i := int64(0); i < s; i++ {
		for j := int64(0); j < s; j++ {
			if i == 0 || j == 0 || i == s-1 || j == s-1 {
				initGrid[i*s+j] = r.Range(0, 100) // fixed boundary
			}
		}
	}
	want := make([]float64, s*s)
	copy(want, initGrid)
	for it := int64(0); it < p.Iters; it++ {
		for color := int64(0); color < 2; color++ {
			for i := int64(1); i <= n; i++ {
				for j := 1 + ((i + 1 + color) & 1); j <= n; j += 2 {
					c := want[i*s+j]
					avg := ((want[(i-1)*s+j] + want[(i+1)*s+j]) + (want[i*s+j-1] + want[i*s+j+1])) * 0.25
					want[i*s+j] = c + (avg-c)*p.Omega
				}
			}
		}
	}

	return &app.App{
		Name:        "sor",
		Description: "S.O.R. solver for Laplace's equation",
		Problem:     fmt.Sprintf("%d x %d grid, %d iterations", n, n, p.Iters),
		Raw:         raw,
		TableProcs:  16,
		Init: func(sh *machine.Shared) {
			for i := int64(0); i < s*s; i++ {
				sh.SetFloatAt("grid", i, initGrid[i])
			}
		},
		Check: func(sh *machine.Shared) error {
			for i := int64(0); i < s*s; i++ {
				if got := sh.FloatAt("grid", i); got != want[i] {
					return fmt.Errorf("sor: grid[%d] = %g, want %g", i, got, want[i])
				}
			}
			return nil
		},
	}
}
