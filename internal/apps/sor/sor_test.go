package sor_test

import (
	"testing"

	"mtsim/internal/apps/sor"
	"mtsim/internal/machine"
)

func TestCorrectAtAwkwardShapes(t *testing.T) {
	for _, p := range []sor.Params{
		{N: 5, Iters: 1, Omega: 1.2, Seed: 1},
		{N: 17, Iters: 2, Omega: 1.9, Seed: 2},
		{N: 33, Iters: 1, Omega: 0.8, Seed: 3},
	} {
		a := sor.New(p)
		if _, err := a.Run(machine.Config{Procs: 3, Threads: 3, Model: machine.ConditionalSwitch, Latency: 40}); err != nil {
			t.Errorf("%+v: %v", p, err)
		}
	}
}

// TestFigure4ShortRunLengths: under switch-on-load the five back-to-back
// stencil loads give run-lengths of one or two cycles for the bulk of the
// distribution (the paper's Table 2 shows 39% + 39%).
func TestFigure4ShortRunLengths(t *testing.T) {
	a := sor.New(sor.ParamsFor(0))
	res, err := a.Run(machine.Config{
		Procs: 4, Threads: 4, Model: machine.SwitchOnLoad,
		Latency: 200, CollectRunLengths: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sf := res.RunLengths.ShortFrac(); sf < 0.5 {
		t.Errorf("short run-length fraction = %.2f, want >= 0.5 (back-to-back loads)", sf)
	}
}

// TestGroupingEliminatesShortRuns: after the §5.1 transformation the
// short run-lengths must be "completely eliminated" and the stencil must
// group its five loads.
func TestGroupingEliminatesShortRuns(t *testing.T) {
	a := sor.New(sor.ParamsFor(0))
	_, st := a.MustGrouped()
	if st.GroupSizes[5] == 0 {
		t.Errorf("no five-load group formed: %v", st.GroupSizes)
	}
	res, err := a.Run(machine.Config{
		Procs: 4, Threads: 4, Model: machine.ExplicitSwitch,
		Latency: 200, CollectRunLengths: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sf := res.RunLengths.ShortFrac(); sf > 0.02 {
		t.Errorf("short run-length fraction after grouping = %.3f, want ~0", sf)
	}
	if g := res.GroupingFactor(); g < 3.0 {
		t.Errorf("dynamic grouping = %.2f, want >= 3 (five-load stencil)", g)
	}
}

// TestGroupingUnlocksEfficiency: the headline: with grouping, a moderate
// multithreading level reaches efficiency switch-on-load cannot.
func TestGroupingUnlocksEfficiency(t *testing.T) {
	a := sor.New(sor.ParamsFor(0))
	base, err := a.Run(machine.Config{Procs: 1, Threads: 1, Model: machine.Ideal})
	if err != nil {
		t.Fatal(err)
	}
	onLoad, err := a.Run(machine.Config{Procs: 4, Threads: 8, Model: machine.SwitchOnLoad, Latency: 200})
	if err != nil {
		t.Fatal(err)
	}
	grouped, err := a.Run(machine.Config{Procs: 4, Threads: 8, Model: machine.ExplicitSwitch, Latency: 200})
	if err != nil {
		t.Fatal(err)
	}
	el, eg := onLoad.Efficiency(base.Cycles), grouped.Efficiency(base.Cycles)
	if eg < 0.7 {
		t.Errorf("grouped efficiency = %.2f, want >= 0.7", eg)
	}
	if eg < 1.8*el {
		t.Errorf("grouping gain %.2f -> %.2f, want >= 1.8x", el, eg)
	}
}
