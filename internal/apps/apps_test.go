package apps_test

import (
	"testing"

	"mtsim/internal/app"
	"mtsim/internal/apps"
	"mtsim/internal/machine"
)

// everyApp is the paper's benchmark set plus the irregular kernels, all
// at Quick scale.
func everyApp() []*app.App {
	return append(apps.All(app.Quick), apps.AllIrregular(app.Quick)...)
}

// TestAllAppsAllModels is the system's central correctness property:
// every benchmark application must compute the right answer under every
// multithreading model, at several machine shapes, and the optimizer's
// grouped variant must never hit an implicit wait under explicit-switch.
func TestAllAppsAllModels(t *testing.T) {
	shapes := []struct{ procs, threads int }{
		{1, 1},
		{4, 2},
		{2, 5},
	}
	models := []machine.Model{
		machine.Ideal, machine.SwitchEveryCycle, machine.SwitchOnLoad,
		machine.SwitchOnUse, machine.ExplicitSwitch, machine.SwitchOnMiss,
		machine.SwitchOnUseMiss, machine.ConditionalSwitch,
	}
	for _, a := range everyApp() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			t.Parallel()
			for _, model := range models {
				for _, sh := range shapes {
					cfg := machine.Config{
						Procs: sh.procs, Threads: sh.threads,
						Model: model, Latency: 60,
					}
					res, err := a.Run(cfg)
					if err != nil {
						t.Fatalf("%s p%d t%d: %v", model, sh.procs, sh.threads, err)
					}
					if model == machine.ExplicitSwitch && res.ImplicitWaits != 0 {
						t.Errorf("%s p%d t%d: %d implicit waits in optimized code",
							model, sh.procs, sh.threads, res.ImplicitWaits)
					}
				}
			}
		})
	}
}

// TestCoherenceInvariants runs every application under the cached models
// with the machine's protocol checker enabled: a dirty line must always
// have exactly one copy and the directory must match the caches, at
// every coherence action of every run.
func TestCoherenceInvariants(t *testing.T) {
	for _, a := range everyApp() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			t.Parallel()
			for _, model := range []machine.Model{machine.SwitchOnMiss, machine.SwitchOnUseMiss, machine.ConditionalSwitch} {
				cfg := machine.Config{
					Procs: 4, Threads: 3, Model: model, Latency: 60,
					CheckInvariants: true,
				}
				if _, err := a.Run(cfg); err != nil {
					t.Fatalf("%s: %v", model, err)
				}
			}
		})
	}
}

// TestGroupingReducesSwitches verifies the paper's headline static claim
// (§5.1 / Table 4): grouping eliminates a large share of switch-on-load's
// context switches for the stencil-style applications, and never makes
// any application switch more.
func TestGroupingReducesSwitches(t *testing.T) {
	for _, a := range everyApp() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			t.Parallel()
			rl, err := a.Run(machine.Config{Model: machine.SwitchOnLoad, Threads: 2})
			if err != nil {
				t.Fatal(err)
			}
			re, err := a.Run(machine.Config{Model: machine.ExplicitSwitch, Threads: 2})
			if err != nil {
				t.Fatal(err)
			}
			if re.TakenSwitches > rl.TakenSwitches {
				t.Errorf("grouped switches %d > switch-on-load %d", re.TakenSwitches, rl.TakenSwitches)
			}
			t.Logf("switches: switch-on-load=%d explicit-switch=%d (%.0f%% eliminated), grouping=%.2f",
				rl.TakenSwitches, re.TakenSwitches,
				100*(1-float64(re.TakenSwitches)/float64(rl.TakenSwitches)),
				re.GroupingFactor())
		})
	}
}

// TestAppInventory sanity-checks each application's metadata and static
// program shape.
func TestAppInventory(t *testing.T) {
	for _, a := range everyApp() {
		if a.Name == "" || a.Description == "" || a.Problem == "" {
			t.Errorf("%+v: incomplete metadata", a.Name)
		}
		loads, stores := a.Raw.CountShared()
		if loads == 0 {
			t.Errorf("%s: no shared loads", a.Name)
		}
		if stores == 0 {
			t.Errorf("%s: no shared stores", a.Name)
		}
		g, st, err := a.Grouped()
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		if len(g.Instrs) != len(a.Raw.Instrs)+st.Added {
			t.Errorf("%s: grouped length %d != raw %d + added %d",
				a.Name, len(g.Instrs), len(a.Raw.Instrs), st.Added)
		}
		if st.Switches == 0 {
			t.Errorf("%s: optimizer inserted no switches", a.Name)
		}
	}
}

func TestUnknownAppRejected(t *testing.T) {
	if _, err := apps.New("nosuch", app.Quick); err == nil {
		t.Error("New(nosuch) succeeded")
	}
}

// TestScalesBuild ensures every scale's parameters produce a valid
// program (full problem sizes are built but not simulated here).
func TestScalesBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale workload generation is slow")
	}
	for _, s := range []app.Scale{app.Quick, app.Medium} {
		for _, name := range apps.AllNames() {
			a := apps.MustNew(name, s)
			if err := a.Raw.Validate(); err != nil {
				t.Errorf("%s/%s: %v", name, s, err)
			}
		}
	}
}
