.program gather+grouped
.shared next 2048
.shared val 2048
.shared last 2048
.shared sctr 1
.shared acc 1

	li	r4, 0
	li	r5, 2048
	li	r6, 2048
	li	r18, 8
	li	r19, 4096
seg:
	li	r8, 6144
	li	r10, 32
	faa	r7, 0(r8), r10
	switch
	bge	r7, r6, seg.done
	addi	r11, r7, 32
	blt	r11, r6, eok
	mov	r11, r6
eok:
	li	r12, 0
	mov	r13, r7
node:
	bge	r13, r11, flush
	mov	r14, r13
	li	r15, 0
hop:
	bge	r15, r18, hop.done
	add	r16, r5, r14
	lw.s	r17, 0(r16)
	add	r16, r4, r14
	lw.s	r14, 0(r16)
	addi	r15, r15, 1
	switch
	add	r12, r12, r17
	j	hop
hop.done:
	add	r16, r19, r13
	sw.s	r14, 0(r16)
	addi	r13, r13, 1
	j	node
flush:
	li	r8, 6145
	faa	r9, 0(r8), r12
	switch
	j	seg
seg.done:
	halt
