.program ugray+grouped
.shared faces 4096
.shared heads 128
.shared out 768
.shared rctr 1

	li	r4, 0
	li	r5, 4096
	li	r18, 4224
	li	r19, 127
	li	r14, 0
	mtf	f13, r14
tile:
	li	r14, 4992
	li	r15, 8
	faa	r6, 0(r14), r15
	li	r14, 384
	switch
	bge	r6, r14, done
	addi	r20, r6, 8
	blt	r20, r14, ray
	mov	r20, r14
ray:
tileok:
	muli	r14, r6, 13
	addi	r14, r14, 7
	andi	r14, r14, 255
	cvt.i.f	f10, r14
	li	r15, 4593671619917905920
	mtf	f1, r15
	fmul	f10, f10, f1
	muli	r14, r6, 29
	addi	r14, r14, 3
	andi	r14, r14, 255
	cvt.i.f	f11, r14
	fmul	f11, f11, f1
	li	r15, 5055640609639927018
	mtf	f12, r15
	li	r11, -1
	li	r7, 0
step:
	srli	r14, r6, 3
	muli	r14, r14, 40503
	muli	r15, r7, 9973
	add	r14, r14, r15
	and	r8, r14, r19
	add	r14, r5, r8
	lw.s	r9, 0(r14)
	switch
face:
	li	r14, -1
	beq	r9, r14, step.next
	muli	r10, r9, 8
	add	r10, r10, r4
	flw.s	f1, 0(r10)
	switch
	flt	r14, f10, f1
	bnez	r14, face.reject
	flw.s	f1, 1(r10)
	switch
	flt	r14, f1, f10
	bnez	r14, face.reject
	flw.s	f1, 2(r10)
	switch
	flt	r14, f11, f1
	bnez	r14, face.reject
	flw.s	f1, 3(r10)
	switch
	flt	r14, f1, f11
	bnez	r14, face.reject
	flw.s	f2, 4(r10)
	flw.s	f3, 5(r10)
	flw.s	f4, 6(r10)
	switch
	fmul	f2, f2, f10
	fmul	f3, f3, f11
	fadd	f2, f2, f3
	fadd	f2, f2, f4
	flt	r14, f13, f2
	flt	r15, f2, f12
	and	r14, r14, r15
	beqz	r14, face.reject
	fmov	f12, f2
	mov	r11, r9
face.reject:
	lw.s	r9, 7(r10)
	switch
	j	face
step.next:
	addi	r7, r7, 1
	li	r14, 6
	blt	r7, r14, step
	slli	r14, r6, 1
	add	r14, r14, r18
	sw.s	r11, 0(r14)
	fsw.s	f12, 1(r14)
	addi	r6, r6, 1
	blt	r6, r20, ray
	j	tile
done:
	halt
