.program hashjoin
.shared rkey 512
.shared rpay 512
.shared skey 1024
.shared bkey 896
.shared bpay 896
.shared bcnt 64
.shared bar 2
.shared sctr1 1
.shared sctr2 1
.shared acc 1

	li	r19, 64
	li	r20, 14
	li	r21, 3840
	li	r22, 2048
	li	r23, 2944
	li	r25, 3904
	li	r4, 0
	li	r5, 512
	li	r6, 512
build.seg:
	li	r8, 3906
	li	r10, 16
	faa	r7, 0(r8), r10
	bge	r7, r6, build.done
	addi	r11, r7, 16
	blt	r11, r6, build.eok
	mov	r11, r6
build.eok:
	mov	r13, r7
build.loop:
	bge	r13, r11, build.seg
	add	r16, r4, r13
	lw.s	r14, 0(r16)
	rem	r15, r14, r19
	add	r10, r21, r15
	li	r9, 1
	faa	r17, 0(r10), r9
	mul	r9, r15, r20
	add	r9, r9, r17
	add	r10, r22, r9
	sw.s	r14, 0(r10)
	add	r16, r5, r13
	lw.s	r18, 0(r16)
	add	r10, r23, r9
	sw.s	r18, 0(r10)
	addi	r13, r13, 1
	j	build.loop
build.done:
	xori	r26, r26, 1
	li	r9, 1
	faa	r10, 0(r25), r9
	addi	r10, r10, 1
	bne	r10, r2, .barspin.42
	sw.s	r0, 0(r25)
	sw.s	r26, 1(r25)
	j	.bardone.38
.barspin.42:
.barwait.38:
	lw.s	r9, 1(r25) !spin
	bne	r9, r26, .barspin.42
.bardone.38:
	li	r4, 1024
	li	r6, 1024
probe.seg:
	li	r8, 3907
	li	r10, 16
	faa	r7, 0(r8), r10
	bge	r7, r6, probe.done
	addi	r11, r7, 16
	blt	r11, r6, probe.eok
	mov	r11, r6
probe.eok:
	li	r12, 0
	mov	r13, r7
probe.loop:
	bge	r13, r11, probe.flush
	add	r16, r4, r13
	lw.s	r14, 0(r16)
	rem	r15, r14, r19
	add	r10, r21, r15
	lw.s	r17, 0(r10)
	mul	r9, r15, r20
	li	r18, 0
probe.scan:
	bge	r18, r17, probe.next
	add	r10, r22, r9
	add	r10, r10, r18
	lw.s	r24, 0(r10)
	bne	r24, r14, probe.skip
	add	r10, r23, r9
	add	r10, r10, r18
	lw.s	r24, 0(r10)
	add	r12, r12, r24
probe.skip:
	addi	r18, r18, 1
	j	probe.scan
probe.next:
	addi	r13, r13, 1
	j	probe.loop
probe.flush:
	li	r8, 3908
	faa	r9, 0(r8), r12
	j	probe.seg
probe.done:
	halt
