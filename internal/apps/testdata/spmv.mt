.program spmv
.shared rowptr 513
.shared colidx 2043
.shared vals 2043
.shared x 512
.shared y 512
.shared sctr 1

	li	r4, 0
	li	r5, 513
	li	r6, 2556
	li	r19, 4599
	li	r20, 5111
	li	r21, 512
seg:
	li	r8, 5623
	li	r10, 16
	faa	r7, 0(r8), r10
	bge	r7, r21, done
	addi	r11, r7, 16
	blt	r11, r21, eok
	mov	r11, r21
eok:
	mov	r13, r7
row:
	bge	r13, r11, seg
	add	r16, r4, r13
	lw.s	r14, 0(r16)
	lw.s	r15, 1(r16)
	li	r12, 0
elem:
	bge	r14, r15, row.store
	add	r16, r5, r14
	lw.s	r17, 0(r16)
	add	r16, r6, r14
	lw.s	r18, 0(r16)
	add	r16, r19, r17
	lw.s	r17, 0(r16)
	mul	r17, r17, r18
	add	r12, r12, r17
	addi	r14, r14, 1
	j	elem
row.store:
	add	r16, r20, r13
	sw.s	r12, 0(r16)
	addi	r13, r13, 1
	j	row
done:
	halt
