.program locus
.shared cost 4096
.shared usage 4096
.shared wires 1600
.shared out 400
.shared wctr 1

	li	r4, 0
	li	r5, 4096
	li	r6, 8192
	li	r7, 9792
	li	r21, 1
	li	r22, 64
task:
	li	r14, 10192
	faa	r9, 0(r14), r21
	li	r14, 400
	bge	r9, r14, done
	slli	r15, r9, 2
	add	r15, r15, r6
	ld.s	r10, 0(r15)
	ld.s	r12, 2(r15)
	li	r16, 0
	mul	r15, r11, r22
	add	r15, r15, r4
	add	r15, r15, r10
	mov	r17, r10
a.row:
	lw.s	r14, 0(r15)
	add	r16, r16, r14
	addi	r15, r15, 1
	addi	r17, r17, 1
	bge	r12, r17, a.row
	mul	r15, r11, r22
	add	r15, r15, r4
	add	r15, r15, r12
	add	r15, r15, r22
	addi	r17, r11, 1
a.col:
	bge	r13, r17, a.colbody
	j	a.done
a.colbody:
	lw.s	r14, 0(r15)
	add	r16, r16, r14
	add	r15, r15, r22
	addi	r17, r17, 1
	j	a.col
a.done:
	mov	r18, r16
	li	r16, 0
	mul	r15, r11, r22
	add	r15, r15, r4
	add	r15, r15, r10
	mov	r17, r11
b.col:
	lw.s	r14, 0(r15)
	add	r16, r16, r14
	add	r15, r15, r22
	addi	r17, r17, 1
	bge	r13, r17, b.col
	mul	r15, r13, r22
	add	r15, r15, r4
	add	r15, r15, r10
	addi	r15, r15, 1
	addi	r17, r10, 1
b.row:
	bge	r12, r17, b.rowbody
	j	b.done
b.rowbody:
	lw.s	r14, 0(r15)
	add	r16, r16, r14
	addi	r15, r15, 1
	addi	r17, r17, 1
	j	b.row
b.done:
	mov	r19, r16
	add	r14, r7, r9
	blt	r19, r18, commitB
	sw.s	r18, 0(r14)
	mul	r15, r11, r22
	add	r15, r15, r5
	add	r15, r15, r10
	mov	r17, r10
ca.row:
	faa	r14, 0(r15), r21
	addi	r15, r15, 1
	addi	r17, r17, 1
	bge	r12, r17, ca.row
	mul	r15, r11, r22
	add	r15, r15, r5
	add	r15, r15, r12
	add	r15, r15, r22
	addi	r17, r11, 1
ca.col:
	bge	r13, r17, ca.colbody
	j	task
ca.colbody:
	faa	r14, 0(r15), r21
	add	r15, r15, r22
	addi	r17, r17, 1
	j	ca.col
commitB:
	sw.s	r19, 0(r14)
	mul	r15, r11, r22
	add	r15, r15, r5
	add	r15, r15, r10
	mov	r17, r11
cb.col:
	faa	r14, 0(r15), r21
	add	r15, r15, r22
	addi	r17, r17, 1
	bge	r13, r17, cb.col
	mul	r15, r13, r22
	add	r15, r15, r5
	add	r15, r15, r10
	addi	r15, r15, 1
	addi	r17, r10, 1
cb.row:
	bge	r12, r17, cb.rowbody
	j	task
cb.rowbody:
	faa	r14, 0(r15), r21
	addi	r15, r15, 1
	addi	r17, r17, 1
	j	cb.row
done:
	halt
