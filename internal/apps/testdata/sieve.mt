.program sieve
.shared flags 60000
.shared sctr 1
.shared count 1
.local lflags 245
.local lprimes 245

	li	r4, 0
	li	r5, 60000
	li	r10, 1
	li	r13, 2
	li	r14, 245
lsieve:
	bge	r13, r14, lsieve.done
	lw	r15, 0(r13)
	bnez	r15, lmark.done
	mul	r9, r13, r13
lmark:
	bge	r9, r14, lmark.done
	sw	r10, 0(r9)
	add	r9, r9, r13
	j	lmark
lmark.done:
lsieve.next:
	addi	r13, r13, 1
	j	lsieve
lsieve.done:
	li	r6, 0
	li	r13, 2
collect:
	bge	r13, r14, collect.done
	lw	r15, 0(r13)
	bnez	r15, collect.next
	sw	r13, 245(r6)
	addi	r6, r6, 1
collect.next:
	addi	r13, r13, 1
	j	collect
collect.done:
seg:
	li	r8, 60000
	li	r10, 64
	faa	r7, 0(r8), r10
	bge	r7, r5, seg.done
	addi	r11, r7, 64
	blt	r11, r5, eok
	mov	r11, r5
eok:
	li	r16, 0
	li	r10, 1
mark.p:
	bge	r16, r6, mark.done
	lw	r17, 245(r16)
	mul	r9, r17, r17
	bge	r9, r7, mfound
	add	r13, r7, r17
	addi	r13, r13, -1
	div	r13, r13, r17
	mul	r9, r13, r17
mfound:
	add	r8, r4, r9
mark.m:
	bge	r9, r11, mark.next
	sw.s	r10, 0(r8)
	add	r9, r9, r17
	add	r8, r8, r17
	j	mark.m
mark.next:
	addi	r16, r16, 1
	j	mark.p
mark.done:
	li	r12, 0
	add	r8, r4, r7
	mov	r13, r7
cnt:
	bge	r13, r11, cnt.done
	ld.s	r14, 0(r8)
	xori	r14, r14, 1
	xori	r15, r15, 1
	add	r12, r12, r14
	add	r12, r12, r15
	addi	r8, r8, 2
	addi	r13, r13, 2
	j	cnt
cnt.done:
	li	r8, 60001
	faa	r14, 0(r8), r12
	j	collect.done
seg.done:
	halt
