.program blkmat+grouped
.shared A 2304
.shared B 2304
.shared C 2304
.shared tctr 1
.local la 64
.local lb 64
.local lc 64

task:
	li	r4, 6912
	li	r5, 1
	faa	r5, 0(r4), r5
	li	r19, 36
	switch
	bge	r5, r19, done
	li	r19, 6
	div	r6, r5, r19
	rem	r7, r5, r19
	muli	r6, r6, 8
	muli	r7, r7, 8
	li	r10, 128
	li	r11, 0
	li	r12, 64
zero:
	sw	r0, 0(r10)
	addi	r10, r10, 1
	addi	r11, r11, 1
	blt	r11, r12, zero
	li	r8, 0
kblock:
	muli	r9, r8, 8
	li	r11, 0
copyA.row:
	add	r19, r6, r11
	muli	r19, r19, 48
	add	r19, r19, r9
	li	r20, 0
	add	r19, r19, r20
	muli	r10, r11, 8
	li	r20, 0
	add	r10, r10, r20
	li	r12, 0
copyA.pair:
	ld.s	r13, 0(r19)
	addi	r19, r19, 2
	addi	r12, r12, 2
	slti	r21, r12, 8
	switch
	sd	r13, 0(r10)
	addi	r10, r10, 2
	bnez	r21, copyA.pair
	addi	r11, r11, 1
	slti	r21, r11, 8
	bnez	r21, copyA.row
	li	r11, 0
copyB.row:
	add	r19, r9, r11
	muli	r19, r19, 48
	add	r19, r19, r7
	li	r20, 2304
	add	r19, r19, r20
	muli	r10, r11, 8
	li	r20, 64
	add	r10, r10, r20
	li	r12, 0
copyB.pair:
	ld.s	r13, 0(r19)
	addi	r19, r19, 2
	addi	r12, r12, 2
	slti	r21, r12, 8
	switch
	sd	r13, 0(r10)
	addi	r10, r10, 2
	bnez	r21, copyB.pair
	addi	r11, r11, 1
	slti	r21, r11, 8
	bnez	r21, copyB.row
	li	r16, 0
mul.i:
	li	r17, 0
mul.j:
	muli	r19, r16, 8
	add	r19, r19, r17
	li	r20, 128
	add	r19, r19, r20
	flw	f1, 0(r19)
	li	r18, 0
mul.k:
	muli	r20, r16, 8
	add	r20, r20, r18
	li	r21, 0
	add	r20, r20, r21
	flw	f2, 0(r20)
	muli	r20, r18, 8
	add	r20, r20, r17
	li	r21, 64
	add	r20, r20, r21
	flw	f3, 0(r20)
	fmul	f2, f2, f3
	fadd	f1, f1, f2
	addi	r18, r18, 1
	slti	r21, r18, 8
	bnez	r21, mul.k
	fsw	f1, 0(r19)
	addi	r17, r17, 1
	slti	r21, r17, 8
	bnez	r21, mul.j
	addi	r16, r16, 1
	slti	r21, r16, 8
	bnez	r21, mul.i
	addi	r8, r8, 1
	li	r21, 6
	blt	r8, r21, kblock
	li	r11, 0
wb.row:
	add	r19, r6, r11
	muli	r19, r19, 48
	add	r19, r19, r7
	li	r20, 4608
	add	r19, r19, r20
	muli	r10, r11, 8
	li	r20, 128
	add	r10, r10, r20
	li	r12, 0
wb.pair:
	ld	r13, 0(r10)
	sd.s	r13, 0(r19)
	addi	r19, r19, 2
	addi	r10, r10, 2
	addi	r12, r12, 2
	slti	r21, r12, 8
	bnez	r21, wb.pair
	addi	r11, r11, 1
	slti	r21, r11, 8
	bnez	r21, wb.row
	j	task
done:
	halt
