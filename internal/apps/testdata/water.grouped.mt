.program water+grouped
.shared pos 392
.shared vel 392
.shared frc 392
.shared bar 2

	li	r4, 0
	li	r5, 392
	li	r6, 784
	li	r13, 98
	li	r16, 49
	li	r17, 1176
	li	r14, 4631530004285489152
	mtf	f10, r14
	li	r14, 4571261708172110332
	mtf	f11, r14
	li	r14, 4584664420663164928
	mtf	f12, r14
	li	r14, 4607182418800017408
	mtf	f13, r14
	li	r14, 98
	add	r14, r14, r2
	addi	r14, r14, -1
	div	r14, r14, r2
	mul	r7, r14, r1
	add	r8, r7, r14
	blt	r8, r13, hiok
	mov	r8, r13
hiok:
	li	r18, 0
iter:
	mov	r9, r7
force.i:
	bge	r9, r8, force.done
	slli	r12, r9, 2
	add	r12, r12, r4
	flw.s	f1, 0(r12)
	flw.s	f2, 1(r12)
	flw.s	f3, 2(r12)
	li	r14, 0
	mtf	f7, r14
	fmov	f8, f7
	fmov	f9, f7
	li	r10, 1
	switch
force.k:
	add	r11, r9, r10
	blt	r11, r13, nowrap
	sub	r11, r11, r13
nowrap:
	slli	r12, r11, 2
	add	r12, r12, r4
	flw.s	f4, 0(r12)
	flw.s	f5, 1(r12)
	flw.s	f6, 2(r12)
	switch
	fsub	f4, f1, f4
	fsub	f5, f2, f5
	fsub	f6, f3, f6
	fmul	f14, f4, f4
	fmul	f15, f5, f5
	fadd	f14, f14, f15
	fmul	f15, f6, f6
	fadd	f14, f14, f15
	flt	r14, f10, f14
	bnez	r14, force.skip
	fadd	f15, f14, f12
	fdiv	f15, f13, f15
	fmul	f4, f4, f15
	fadd	f7, f7, f4
	fmul	f5, f5, f15
	fadd	f8, f8, f5
	fmul	f6, f6, f15
	fadd	f9, f9, f6
force.skip:
	addi	r10, r10, 1
	bge	r16, r10, force.k
	slli	r12, r9, 2
	add	r12, r12, r6
	fsw.s	f7, 0(r12)
	fsw.s	f8, 1(r12)
	fsw.s	f9, 2(r12)
	addi	r9, r9, 1
	j	force.i
force.done:
	xori	r20, r20, 1
	li	r14, 1
	faa	r15, 0(r17), r14
	switch
	addi	r15, r15, 1
	bne	r15, r2, .barspin.78
	sw.s	r0, 0(r17)
	sw.s	r20, 1(r17)
	j	.bardone.74
.barspin.78:
.barwait.74:
	lw.s	r14, 1(r17) !spin
	switch
	bne	r14, r20, .barspin.78
.bardone.74:
	mov	r9, r7
upd.i:
	bge	r9, r8, upd.done
	slli	r12, r9, 2
	add	r14, r12, r6
	flw.s	f1, 0(r14)
	flw.s	f2, 1(r14)
	flw.s	f3, 2(r14)
	add	r14, r12, r5
	flw.s	f4, 0(r14)
	flw.s	f5, 1(r14)
	flw.s	f6, 2(r14)
	addi	r9, r9, 1
	switch
	fmul	f1, f1, f11
	fadd	f4, f4, f1
	fmul	f2, f2, f11
	fadd	f5, f5, f2
	fmul	f3, f3, f11
	fadd	f6, f6, f3
	fsw.s	f4, 0(r14)
	fsw.s	f5, 1(r14)
	fsw.s	f6, 2(r14)
	add	r14, r12, r4
	flw.s	f1, 0(r14)
	flw.s	f2, 1(r14)
	flw.s	f3, 2(r14)
	fmul	f7, f4, f11
	switch
	fadd	f1, f1, f7
	fmul	f7, f5, f11
	fadd	f2, f2, f7
	fmul	f7, f6, f11
	fadd	f3, f3, f7
	fsw.s	f1, 0(r14)
	fsw.s	f2, 1(r14)
	fsw.s	f3, 2(r14)
	j	upd.i
upd.done:
	xori	r20, r20, 1
	li	r14, 1
	faa	r15, 0(r17), r14
	switch
	addi	r15, r15, 1
	bne	r15, r2, .barspin.123
	sw.s	r0, 0(r17)
	sw.s	r20, 1(r17)
	j	.bardone.119
.barspin.123:
.barwait.119:
	lw.s	r14, 1(r17) !spin
	switch
	bne	r14, r20, .barspin.123
.bardone.119:
	addi	r18, r18, 1
	slti	r14, r18, 2
	bnez	r14, iter
	halt
