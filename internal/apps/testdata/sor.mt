.program sor
.shared grid 4356
.shared bar 2

	li	r4, 0
	li	r5, 66
	li	r14, 64
	add	r15, r14, r2
	addi	r15, r15, -1
	div	r15, r15, r2
	mul	r6, r15, r1
	addi	r6, r6, 1
	add	r7, r6, r15
	li	r13, 65
	blt	r7, r13, hiok
	mov	r7, r13
hiok:
	li	r16, 4609434218613702656
	mtf	f10, r16
	li	r16, 4598175219545276416
	mtf	f11, r16
	li	r17, 4356
	li	r8, 0
iter:
	li	r9, 0
color:
	mov	r10, r6
row:
	bge	r10, r7, rows.done
	add	r14, r10, r9
	addi	r14, r14, 1
	andi	r14, r14, 1
	addi	r11, r14, 1
	mul	r12, r10, r5
	add	r12, r12, r4
pt:
	bge	r11, r13, row.done
	add	r14, r12, r11
	flw.s	f1, -66(r14)
	flw.s	f2, 66(r14)
	flw.s	f3, -1(r14)
	flw.s	f4, 1(r14)
	flw.s	f5, 0(r14)
	fadd	f1, f1, f2
	fadd	f3, f3, f4
	fadd	f1, f1, f3
	fmul	f1, f1, f11
	fsub	f1, f1, f5
	fmul	f1, f1, f10
	fadd	f1, f5, f1
	fsw.s	f1, 0(r14)
	addi	r11, r11, 2
	j	pt
row.done:
	addi	r10, r10, 1
	j	row
rows.done:
	xori	r20, r20, 1
	li	r14, 1
	faa	r15, 0(r17), r14
	addi	r15, r15, 1
	bne	r15, r2, .barspin.54
	sw.s	r0, 0(r17)
	sw.s	r20, 1(r17)
	j	.bardone.50
.barspin.54:
.barwait.50:
	lw.s	r14, 1(r17) !spin
	bne	r14, r20, .barspin.54
.bardone.50:
	addi	r9, r9, 1
	slti	r14, r9, 2
	bnez	r14, color
	addi	r8, r8, 1
	slti	r14, r8, 3
	bnez	r14, iter
	halt
