.program mp3d+grouped
.shared part 24000
.shared cells 4096
.shared bar 2

	li	r4, 0
	li	r5, 24000
	li	r17, 28096
	li	r21, 1
	li	r22, 2047
	li	r14, 4576918229304087675
	mtf	f10, r14
	li	r14, 4634204016564240384
	mtf	f11, r14
	li	r14, 4602678819172646912
	mtf	f12, r14
	li	r14, 3000
	add	r14, r14, r2
	addi	r14, r14, -1
	div	r14, r14, r2
	mul	r7, r14, r1
	add	r8, r7, r14
	li	r15, 3000
	blt	r8, r15, hiok
	mov	r8, r15
hiok:
	li	r18, 0
step:
	mov	r9, r7
move:
	bge	r9, r8, move.done
	slli	r12, r9, 3
	add	r12, r12, r4
	flw.s	f1, 0(r12)
	flw.s	f2, 1(r12)
	flw.s	f3, 2(r12)
	flw.s	f4, 3(r12)
	flw.s	f5, 4(r12)
	flw.s	f6, 5(r12)
	switch
	fmul	f14, f4, f10
	fadd	f1, f1, f14
	fmul	f14, f5, f10
	fadd	f2, f2, f14
	fmul	f14, f6, f10
	fadd	f3, f3, f14
	fmul	f14, f1, f11
	cvt.f.i	r14, f14
	fmul	f15, f2, f11
	cvt.f.i	r15, f15
	slli	r15, r15, 5
	add	r14, r14, r15
	fmul	f15, f3, f11
	cvt.f.i	r15, f15
	slli	r15, r15, 10
	add	r14, r14, r15
	and	r14, r14, r22
	slli	r16, r14, 1
	add	r16, r16, r5
	faa	r15, 0(r16), r21
	flw.s	f14, 1(r16)
	switch
	flt	r15, f14, f12
	bnez	r15, nocollide
	muli	r15, r14, 40503
	addi	r15, r15, 7
	and	r15, r15, r22
	slli	r15, r15, 1
	add	r15, r15, r5
	flw.s	f14, 1(r15)
	switch
	fneg	f15, f14
	fmul	f4, f4, f15
	fmul	f5, f5, f14
	fmul	f6, f6, f15
nocollide:
	fsw.s	f1, 0(r12)
	fsw.s	f2, 1(r12)
	fsw.s	f3, 2(r12)
	fsw.s	f4, 3(r12)
	fsw.s	f5, 4(r12)
	fsw.s	f6, 5(r12)
	addi	r9, r9, 1
	j	move
move.done:
	xori	r20, r20, 1
	li	r14, 1
	faa	r15, 0(r17), r14
	switch
	addi	r15, r15, 1
	bne	r15, r2, .barspin.80
	sw.s	r0, 0(r17)
	sw.s	r20, 1(r17)
	j	.bardone.76
.barspin.80:
.barwait.76:
	lw.s	r14, 1(r17) !spin
	switch
	bne	r14, r20, .barspin.80
.bardone.76:
	addi	r18, r18, 1
	slti	r14, r18, 2
	bnez	r14, step
	halt
