package sieve_test

import (
	"testing"

	"mtsim/internal/apps/sieve"
	"mtsim/internal/machine"
)

func TestCorrectAtAwkwardSizes(t *testing.T) {
	for _, n := range []int64{64, 97, 1000, 4096} {
		a := sieve.New(sieve.Params{N: n, Chunk: 10})
		if _, err := a.Run(machine.Config{Procs: 3, Threads: 2, Model: machine.SwitchOnLoad, Latency: 30}); err != nil {
			t.Errorf("N=%d: %v", n, err)
		}
	}
}

func TestParamsNormalization(t *testing.T) {
	a := sieve.New(sieve.Params{N: 3, Chunk: 1}) // tiny & odd: must be repaired
	if _, err := a.Run(machine.Config{Model: machine.Ideal}); err != nil {
		t.Fatal(err)
	}
}

// TestRunLengthCharacter: the paper singles sieve out for its "fairly
// constant run-length distribution" (§4.1) — marking at a constant rate
// with counting loads spaced well apart. Short run-lengths must be rare
// and the mean comfortably above the stencil codes'.
func TestRunLengthCharacter(t *testing.T) {
	a := sieve.New(sieve.ParamsFor(0))
	res, err := a.Run(machine.Config{
		Procs: 4, Threads: 4, Model: machine.SwitchOnLoad,
		Latency: 200, CollectRunLengths: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sf := res.RunLengths.ShortFrac(); sf > 0.10 {
		t.Errorf("short run-length fraction = %.2f, want <= 0.10 (constant-rate character)", sf)
	}
	if m := res.MeanRunLength(); m < 10 || m > 200 {
		t.Errorf("mean run-length = %.1f, want within [10,200]", m)
	}
}

// TestScalesWell: segments are independent, so sieve must keep high
// efficiency on the ideal machine well past the other applications'
// drop-off (the paper's Figure 2/3 behaviour).
func TestScalesWell(t *testing.T) {
	a := sieve.New(sieve.ParamsFor(0))
	r1, err := a.Run(machine.Config{Procs: 1, Threads: 1, Model: machine.Ideal})
	if err != nil {
		t.Fatal(err)
	}
	r16, err := a.Run(machine.Config{Procs: 16, Threads: 1, Model: machine.Ideal})
	if err != nil {
		t.Fatal(err)
	}
	if eff := r16.Efficiency(r1.Cycles); eff < 0.9 {
		t.Errorf("16-processor ideal efficiency = %.2f, want >= 0.9", eff)
	}
}
