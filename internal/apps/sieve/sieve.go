// Package sieve builds the paper's sieve benchmark: count the primes
// below N (Table 1: primes < 4,000,000).
//
// The parallelization is a segmented sieve, matching the paper's
// description of the program's behaviour (§4.1: "it runs through a large
// array marking numbers as non-prime at a constant rate" and has a fairly
// constant run-length distribution): each thread first computes the
// primes below sqrt(N) privately in local memory (cheap, duplicated,
// no shared traffic), then self-schedules segments of the shared flag
// array with Fetch-and-Add. A segment's owner marks composites with
// shared stores (which never context switch) and immediately counts the
// survivors with paired Load-Double reads, accumulating into a global
// counter with Fetch-and-Add. Segments are independent, so the program
// scales until the segments run out and the result is deterministic
// under any interleaving.
package sieve

import (
	"fmt"

	"mtsim/internal/app"
	"mtsim/internal/machine"
	"mtsim/internal/par"
	"mtsim/internal/prog"
)

// Params sizes the problem.
type Params struct {
	// N: count primes below N. Rounded up to even.
	N int64
	// Chunk is the segment size in cells (even).
	Chunk int64
}

// ParamsFor returns the problem size for a scale. Full is the paper's
// 4,000,000.
func ParamsFor(s app.Scale) Params {
	switch s {
	case app.Quick:
		return Params{N: 60000, Chunk: 64}
	case app.Medium:
		return Params{N: 500000, Chunk: 128}
	default:
		return Params{N: 4000000, Chunk: 256}
	}
}

func (p Params) normalized() Params {
	if p.N < 64 {
		p.N = 64
	}
	if p.N%2 == 1 {
		p.N++
	}
	if p.Chunk < 2 {
		p.Chunk = 2
	}
	if p.Chunk%2 == 1 {
		p.Chunk++
	}
	return p
}

func isqrt(n int64) int64 {
	var r int64
	for r*r <= n {
		r++
	}
	return r - 1
}

// New builds the application.
func New(p Params) *app.App {
	p = p.normalized()
	limit := isqrt(p.N) + 1 // candidates are 2..limit-1

	b := prog.NewBuilder("sieve")
	flags := b.Shared("flags", p.N)
	sctr := b.Shared("sctr", 1)
	count := b.Shared("count", 1)
	lflags := b.Local("lflags", limit)
	lprimes := b.Local("lprimes", limit)
	_ = par.BarrierCells // segments are independent; no barrier needed

	// Registers: r4 flags base, r5 N, r6 local prime count, r7 segment
	// start, r8 pointer, r9 multiple, r10 constant 1 / scratch, r11
	// segment end, r12 survivor count, r13/r14/r15 scratch, r16 prime
	// index, r17 prime value.
	b.Li(4, flags.Base)
	b.Li(5, p.N)

	// Phase A (thread-private): sieve 2..limit-1 in local memory and
	// collect the primes.
	b.Li(10, 1)
	b.Li(13, 2) // candidate
	b.Li(14, limit)
	b.Label("lsieve")
	b.Bge(13, 14, "lsieve.done")
	b.Lw(15, 13, lflags.Base)
	b.Bnez(15, "lsieve.next")
	b.Mul(9, 13, 13)
	b.Label("lmark")
	b.Bge(9, 14, "lmark.done")
	b.Sw(10, 9, lflags.Base)
	b.Add(9, 9, 13)
	b.J("lmark")
	b.Label("lmark.done")
	b.Label("lsieve.next")
	b.Addi(13, 13, 1)
	b.J("lsieve")
	b.Label("lsieve.done")
	// Collect primes into lprimes[0..r6).
	b.Li(6, 0)
	b.Li(13, 2)
	b.Label("collect")
	b.Bge(13, 14, "collect.done")
	b.Lw(15, 13, lflags.Base)
	b.Bnez(15, "collect.next")
	b.Sw(13, 6, lprimes.Base)
	b.Addi(6, 6, 1)
	b.Label("collect.next")
	b.Addi(13, 13, 1)
	b.J("collect")
	b.Label("collect.done")

	// Phase B: self-scheduled segments [s, e) of the shared flag array.
	b.Label("seg")
	b.Li(8, sctr.Base)
	par.SelfSchedule(b, 8, 0, p.Chunk, 7, 10)
	b.Bge(7, 5, "seg.done")
	b.Addi(11, 7, p.Chunk)
	b.Blt(11, 5, "eok")
	b.Mov(11, 5)
	b.Label("eok")

	// Mark multiples of each private prime within [s, e).
	b.Li(16, 0)
	b.Li(10, 1)
	b.Label("mark.p")
	b.Bge(16, 6, "mark.done")
	b.Lw(17, 16, lprimes.Base) // p
	// m = max(p*p, ceil(s/p)*p)
	b.Mul(9, 17, 17)
	b.Bge(9, 7, "mfound")
	b.Add(13, 7, 17)
	b.Addi(13, 13, -1)
	b.Div(13, 13, 17)
	b.Mul(9, 13, 17)
	b.Label("mfound")
	b.Add(8, 4, 9)
	b.Label("mark.m")
	b.Bge(9, 11, "mark.next")
	b.SwS(10, 8, 0) // flags[m] = 1
	b.Add(9, 9, 17)
	b.Add(8, 8, 17)
	b.J("mark.m")
	b.Label("mark.next")
	b.Addi(16, 16, 1)
	b.J("mark.p")
	b.Label("mark.done")

	// Count the survivors of this segment with paired loads.
	b.Li(12, 0)
	b.Add(8, 4, 7)
	b.Mov(13, 7)
	b.Label("cnt")
	b.Bge(13, 11, "cnt.done")
	b.LdS(14, 8, 0) // flags[i], flags[i+1] in one message
	b.Xori(14, 14, 1)
	b.Xori(15, 15, 1)
	b.Add(12, 12, 14)
	b.Add(12, 12, 15)
	b.Addi(8, 8, 2)
	b.Addi(13, 13, 2)
	b.J("cnt")
	b.Label("cnt.done")
	b.Li(8, count.Base)
	b.Faa(14, 8, 0, 12)
	b.J("seg")
	b.Label("seg.done")
	b.Halt()

	raw := b.MustBuild()
	want := hostSieve(p.N)

	return &app.App{
		Name:        "sieve",
		Description: "counts primes < N",
		Problem:     fmt.Sprintf("primes < %d", p.N),
		Raw:         raw,
		TableProcs:  16,
		Init: func(sh *machine.Shared) {
			sh.SetWordAt("flags", 0, 1)
			sh.SetWordAt("flags", 1, 1)
		},
		Check: func(sh *machine.Shared) error {
			if got := sh.WordAt("count", 0); got != want {
				return fmt.Errorf("sieve: counted %d primes below %d, want %d", got, p.N, want)
			}
			return nil
		},
	}
}

// hostSieve is the reference implementation.
func hostSieve(n int64) int64 {
	comp := make([]bool, n)
	for p := int64(2); p*p < n; p++ {
		if comp[p] {
			continue
		}
		for m := p * p; m < n; m += p {
			comp[m] = true
		}
	}
	var c int64
	for i := int64(2); i < n; i++ {
		if !comp[i] {
			c++
		}
	}
	return c
}
