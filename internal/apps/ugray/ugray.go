// Package ugray builds a stand-in for the paper's ugray ray-tracing
// renderer (Table 1: gears scene, 7169 faces).
//
// Substitution (see DESIGN.md §2): the original walks spatial-subdivision
// cells and tests rays against linked lists of polygon faces, loading a
// few fields of each face structure between conditional bounding-box
// tests. Our kernel reproduces exactly that access character: rays are
// self-scheduled with Fetch-and-Add; each ray probes a fixed sequence of
// grid cells; each cell holds a linked list of 8-cell face records
// ([x0 x1 y0 y1 nx ny d next]); the bounding-box tests interleave one
// shared load with one branch each, so basic blocks contain a single
// shared load and intra-block grouping barely helps (the paper measured a
// 1.3 grouping factor) — while all eight fields share one 16-cell memory
// line, so the §5.2 inter-block window finds the grouping a smarter
// compiler would (the paper measured 42% window hits, lifting grouping to
// 1.9).
package ugray

import (
	"fmt"

	"mtsim/internal/app"
	"mtsim/internal/machine"
	"mtsim/internal/par"
	"mtsim/internal/prog"
	"mtsim/internal/rng"
)

// Face record layout (8 cells, aligned so a record never straddles a
// 16-cell window line).
const (
	fX0 = iota
	fX1
	fY0
	fY1
	fNx
	fNy
	fD
	fNext
	faceCells
)

// Params sizes the problem.
type Params struct {
	// Rays is the number of rays traced.
	Rays int64
	// Cells is the number of grid cells (rounded up to a power of two).
	Cells int64
	// FacesPerCell is the mean face-list length.
	FacesPerCell int64
	// Steps is the number of cells each ray probes.
	Steps int64
	Seed  uint64
}

// ParamsFor returns the problem size for a scale. Full approximates the
// paper's 7169-face scene and 20x512 image slice.
func ParamsFor(s app.Scale) Params {
	switch s {
	case app.Quick:
		return Params{Rays: 384, Cells: 128, FacesPerCell: 4, Steps: 6, Seed: 3}
	case app.Medium:
		return Params{Rays: 2048, Cells: 512, FacesPerCell: 4, Steps: 8, Seed: 3}
	default:
		return Params{Rays: 10240, Cells: 2048, FacesPerCell: 4, Steps: 8, Seed: 3}
	}
}

func (p Params) normalized() Params {
	if p.Rays < 1 {
		p.Rays = 1
	}
	if p.Cells < 2 {
		p.Cells = 2
	}
	for c := int64(1); ; c <<= 1 {
		if c >= p.Cells {
			p.Cells = c
			break
		}
	}
	if p.FacesPerCell < 1 {
		p.FacesPerCell = 1
	}
	if p.Steps < 1 {
		p.Steps = 1
	}
	return p
}

// rayTile is the image-space tile size: consecutive rays in a tile probe
// the same cell sequence (spatial coherence, as in a real renderer) and
// are claimed together by one thread, so a processor reuses the scene
// data it just fetched.
const rayTile = 8

// cellWalk returns the cell a ray probes at a step: a fixed pseudo-random
// walk, shared by all rays of a tile, that both the kernel and the host
// mirror compute identically.
func cellWalk(ray, step, mask int64) int64 {
	return ((ray/rayTile)*40503 + step*9973) & mask
}

// rayCoords derives a ray's (x, y) probe point.
func rayCoords(ray int64) (float64, float64) {
	rx := float64((ray*13+7)&255) * 0.125
	ry := float64((ray*29+3)&255) * 0.125
	return rx, ry
}

// New builds the application.
func New(p Params) *app.App {
	p = p.normalized()
	nf := p.Cells * p.FacesPerCell
	mask := p.Cells - 1
	const noHit = -1

	b := prog.NewBuilder("ugray")
	faces := b.Shared("faces", nf*faceCells)
	heads := b.Shared("heads", p.Cells)
	out := b.Shared("out", p.Rays*2)
	rctr := b.Shared("rctr", 1)
	_ = par.LockCells // ugray needs no locks; rays are independent

	// Registers: r4 faces base, r5 heads base, r6 ray, r7 step, r8 cell,
	// r9 face index, r10 face record address, r11 best face id,
	// r14/r15/r16 scratch, r18 out base, r19 mask.
	// Floats: f10 rx, f11 ry, f12 tmin, f13 0.0, f1..f4 scratch.
	b.Li(4, faces.Base)
	b.Li(5, heads.Base)
	b.Li(18, out.Base)
	b.Li(19, mask)
	b.LiF(13, 0.0, 14)

	// Claim rays a tile at a time: r20 is the tile end.
	b.Label("tile")
	b.Li(14, rctr.Base)
	b.Li(15, rayTile)
	b.Faa(6, 14, 0, 15) // ray = tile start
	b.Li(14, p.Rays)
	b.Bge(6, 14, "done")
	b.Addi(20, 6, rayTile)
	b.Blt(20, 14, "tileok")
	b.Mov(20, 14)
	b.Label("tileok")

	b.Label("ray")
	// rx = float((ray*13+7) & 255) * 0.125, ry likewise.
	b.Muli(14, 6, 13)
	b.Addi(14, 14, 7)
	b.Andi(14, 14, 255)
	b.CvtIF(10, 14)
	b.LiF(1, 0.125, 15)
	b.Fmul(10, 10, 1)
	b.Muli(14, 6, 29)
	b.Addi(14, 14, 3)
	b.Andi(14, 14, 255)
	b.CvtIF(11, 14)
	b.Fmul(11, 11, 1)
	b.LiF(12, 1e30, 15) // tmin
	b.Li(11, noHit)     // best face id
	b.Li(7, 0)          // step

	b.Label("step")
	// cell = ((ray/tile)*40503 + step*9973) & mask
	b.Srli(14, 6, 3) // rayTile == 8
	b.Muli(14, 14, 40503)
	b.Muli(15, 7, 9973)
	b.Add(14, 14, 15)
	b.And(8, 14, 19)
	b.Add(14, 5, 8)
	b.LwS(9, 14, 0) // face = heads[cell]

	b.Label("face")
	b.Li(14, noHit)
	b.Beq(9, 14, "step.next")
	b.Muli(10, 9, faceCells)
	b.Add(10, 10, 4) // face record address
	// Bounding-box tests: one load, one branch each — the cross-block
	// pattern that defeats intra-block grouping.
	b.FlwS(1, 10, fX0)
	b.Flt(14, 10+0, 1) // rx < x0 ?  (f10 is rx)
	b.Bnez(14, "face.reject")
	b.FlwS(1, 10, fX1)
	b.Flt(14, 1, 10) // x1 < rx ?
	b.Bnez(14, "face.reject")
	b.FlwS(1, 10, fY0)
	b.Flt(14, 11, 1) // ry < y0 ?  -- careful: r11 is the best id; f11 is ry
	b.Bnez(14, "face.reject")
	b.FlwS(1, 10, fY1)
	b.Flt(14, 1, 11) // y1 < ry ?
	b.Bnez(14, "face.reject")
	// Accepted: plane evaluation t = nx*rx + ny*ry + d.
	b.FlwS(2, 10, fNx)
	b.FlwS(3, 10, fNy)
	b.FlwS(4, 10, fD)
	b.Fmul(2, 2, 10)
	b.Fmul(3, 3, 11)
	b.Fadd(2, 2, 3)
	b.Fadd(2, 2, 4)
	b.Flt(14, 13, 2) // 0 < t
	b.Flt(15, 2, 12) // t < tmin
	b.And(14, 14, 15)
	b.Beqz(14, "face.reject")
	b.Fmov(12, 2)
	b.Mov(11, 9)
	b.Label("face.reject")
	b.LwS(9, 10, fNext)
	b.J("face")

	b.Label("step.next")
	b.Addi(7, 7, 1)
	b.Li(14, p.Steps)
	b.Blt(7, 14, "step")

	// Record the result: out[2*ray] = best id, out[2*ray+1] = tmin.
	b.Slli(14, 6, 1)
	b.Add(14, 14, 18)
	b.SwS(11, 14, 0)
	b.FswS(12, 14, 1)
	b.Addi(6, 6, 1)
	b.Blt(6, 20, "ray")
	b.J("tile")
	b.Label("done")
	b.Halt()
	raw := b.MustBuild()

	// Scene generation and reference trace.
	type face struct {
		x0, x1, y0, y1, nx, ny, d float64
		next                      int64
	}
	fs := make([]face, nf)
	headv := make([]int64, p.Cells)
	for i := range headv {
		headv[i] = noHit
	}
	r := rng.New(p.Seed)
	for i := range fs {
		x0 := r.Range(0, 30)
		y0 := r.Range(0, 30)
		fs[i] = face{
			x0: x0, x1: x0 + r.Range(0.5, 8),
			y0: y0, y1: y0 + r.Range(0.5, 8),
			nx: r.Range(-1, 1), ny: r.Range(-1, 1), d: r.Range(0, 40),
		}
		cell := r.Intn(p.Cells)
		fs[i].next = headv[cell]
		headv[cell] = int64(i)
	}

	wantID := make([]int64, p.Rays)
	wantT := make([]float64, p.Rays)
	for ray := int64(0); ray < p.Rays; ray++ {
		rx, ry := rayCoords(ray)
		tmin := 1e30
		best := int64(noHit)
		for step := int64(0); step < p.Steps; step++ {
			cell := cellWalk(ray, step, mask)
			for f := headv[cell]; f != noHit; f = fs[f].next {
				fc := &fs[f]
				if rx < fc.x0 || fc.x1 < rx || ry < fc.y0 || fc.y1 < ry {
					continue
				}
				t := fc.nx*rx + fc.ny*ry + fc.d
				if 0 < t && t < tmin {
					tmin, best = t, f
				}
			}
		}
		wantID[ray], wantT[ray] = best, tmin
	}

	return &app.App{
		Name:        "ugray",
		Description: "ray tracing graphics renderer (kernel substitute)",
		Problem:     fmt.Sprintf("%d rays, %d faces, %d cells", p.Rays, nf, p.Cells),
		Raw:         raw,
		TableProcs:  16,
		Init: func(sh *machine.Shared) {
			for i, f := range fs {
				base := int64(i) * faceCells
				sh.SetFloatAt("faces", base+fX0, f.x0)
				sh.SetFloatAt("faces", base+fX1, f.x1)
				sh.SetFloatAt("faces", base+fY0, f.y0)
				sh.SetFloatAt("faces", base+fY1, f.y1)
				sh.SetFloatAt("faces", base+fNx, f.nx)
				sh.SetFloatAt("faces", base+fNy, f.ny)
				sh.SetFloatAt("faces", base+fD, f.d)
				sh.SetWordAt("faces", base+fNext, f.next)
			}
			for i, h := range headv {
				sh.SetWordAt("heads", int64(i), h)
			}
		},
		Check: func(sh *machine.Shared) error {
			for ray := int64(0); ray < p.Rays; ray++ {
				if got := sh.WordAt("out", 2*ray); got != wantID[ray] {
					return fmt.Errorf("ugray: ray %d hit face %d, want %d", ray, got, wantID[ray])
				}
				if got := sh.FloatAt("out", 2*ray+1); got != wantT[ray] {
					return fmt.Errorf("ugray: ray %d t = %g, want %g", ray, got, wantT[ray])
				}
			}
			return nil
		},
	}
}
