package ugray_test

import (
	"testing"

	"mtsim/internal/apps/ugray"
	"mtsim/internal/machine"
)

func TestCorrectAtAwkwardShapes(t *testing.T) {
	for _, p := range []ugray.Params{
		{Rays: 7, Cells: 9, FacesPerCell: 1, Steps: 2, Seed: 1}, // cells rounded to 16
		{Rays: 33, Cells: 32, FacesPerCell: 6, Steps: 3, Seed: 2},
	} {
		a := ugray.New(p)
		if _, err := a.Run(machine.Config{Procs: 2, Threads: 4, Model: machine.SwitchOnUse, Latency: 60}); err != nil {
			t.Errorf("%+v: %v", p, err)
		}
	}
}

// TestIntraBlockGroupingWeak: ugray's field loads are separated by
// bounding-box branches, so intra-block grouping barely helps — the
// paper measured a 1.3 grouping factor.
func TestIntraBlockGroupingWeak(t *testing.T) {
	a := ugray.New(ugray.ParamsFor(0))
	res, err := a.Run(machine.Config{
		Procs: 4, Threads: 4, Model: machine.ExplicitSwitch,
		Latency: 200, CollectRunLengths: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if g := res.GroupingFactor(); g > 1.4 {
		t.Errorf("grouping = %.2f, want <= 1.4 (loads split across blocks)", g)
	}
}

// TestWindowFindsInterBlockGrouping: the §5.2 one-line window must find
// the grouping a smarter compiler would — face fields share a memory
// line, so the window hit rate is substantial and the effective grouping
// factor rises well above the intra-block one (paper: 42% hits,
// 1.3 -> 1.9).
func TestWindowFindsInterBlockGrouping(t *testing.T) {
	a := ugray.New(ugray.ParamsFor(0))
	plain, err := a.Run(machine.Config{
		Procs: 4, Threads: 4, Model: machine.ExplicitSwitch,
		Latency: 200, CollectRunLengths: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	win, err := a.Run(machine.Config{
		Procs: 4, Threads: 4, Model: machine.ExplicitSwitch,
		Latency: 200, CollectRunLengths: true, GroupWindow: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if hr := win.WindowHitRate(); hr < 0.35 {
		t.Errorf("window hit rate = %.2f, want >= 0.35", hr)
	}
	if win.GroupingFactor() < 1.4*plain.GroupingFactor() {
		t.Errorf("window grouping %.2f vs plain %.2f, want >= 1.4x",
			win.GroupingFactor(), plain.GroupingFactor())
	}
	if win.Cycles >= plain.Cycles {
		t.Errorf("window run not faster: %d vs %d cycles", win.Cycles, plain.Cycles)
	}
}
