// Package locus builds a stand-in for the SPLASH LocusRoute standard-cell
// wire router (Table 1: Primary2, 1250 cells x 20 channels).
//
// Substitution (see DESIGN.md §2): the original evaluates candidate
// routes for each wire by walking rows and columns of a cost array, then
// commits the cheapest route. Our kernel keeps that structure: wires are
// self-scheduled with Fetch-and-Add; for each wire two L-shaped routes
// are costed by walking a static congestion array one cell per loop
// iteration (the loop-carried single-load blocks that keep locus's
// run-lengths and intra-block grouping factor low — the paper measured
// 1.05), and the chosen route's cells are committed to a usage array with
// Fetch-and-Add, which keeps the final state deterministic under any
// interleaving. Horizontal walks touch consecutive addresses, which is
// precisely the inter-block grouping opportunity the paper's one-line
// window experiment found (84% hits): wires are generated wide and short
// so row walking dominates, as in a standard-cell channel router.
package locus

import (
	"fmt"

	"mtsim/internal/app"
	"mtsim/internal/machine"
	"mtsim/internal/par"
	"mtsim/internal/prog"
	"mtsim/internal/rng"
)

// Params sizes the problem.
type Params struct {
	// G is the routing grid dimension (G x G cost cells).
	G int64
	// Wires is the number of wires to route.
	Wires int64
	Seed  uint64
}

// ParamsFor returns the problem size for a scale.
func ParamsFor(s app.Scale) Params {
	switch s {
	case app.Quick:
		return Params{G: 64, Wires: 400, Seed: 5}
	case app.Medium:
		return Params{G: 128, Wires: 1500, Seed: 5}
	default:
		return Params{G: 256, Wires: 5000, Seed: 5}
	}
}

func (p Params) normalized() Params {
	if p.G < 32 {
		p.G = 32
	}
	if p.Wires < 1 {
		p.Wires = 1
	}
	return p
}

// New builds the application.
func New(p Params) *app.App {
	p = p.normalized()
	g := p.G
	w := p.Wires

	b := prog.NewBuilder("locus")
	cost := b.Shared("cost", g*g)
	usage := b.Shared("usage", g*g)
	wires := b.Shared("wires", w*4)
	out := b.Shared("out", w)
	wctr := b.Shared("wctr", 1)
	_ = par.LockCells // routing commits via Fetch-and-Add; no locks needed

	// r4 cost base, r5 usage base, r6 wires base, r7 out base,
	// r9 wire id, r10..r13 x1 y1 x2 y2, r14 scratch/loaded cost,
	// r15 walk address, r16 accumulator, r17 loop index,
	// r18 route-A cost, r19 route-B cost, r21 constant 1, r22 G.
	b.Li(4, cost.Base)
	b.Li(5, usage.Base)
	b.Li(6, wires.Base)
	b.Li(7, out.Base)
	b.Li(21, 1)
	b.Li(22, g)

	b.Label("task")
	b.Li(14, wctr.Base)
	b.Faa(9, 14, 0, 21)
	b.Li(14, w)
	b.Bge(9, 14, "done")
	// Load the wire endpoints: two Load-Doubles from the packed record.
	b.Slli(15, 9, 2)
	b.Add(15, 15, 6)
	b.LdS(10, 15, 0) // x1, y1
	b.LdS(12, 15, 2) // x2, y2

	// Route A: row y1 from x1..x2, then column x2 from y1+1..y2.
	b.Li(16, 0)
	b.Mul(15, 11, 22)
	b.Add(15, 15, 4)
	b.Add(15, 15, 10) // &cost[y1*G + x1]
	b.Mov(17, 10)
	b.Label("a.row")
	b.LwS(14, 15, 0)
	b.Add(16, 16, 14)
	b.Addi(15, 15, 1)
	b.Addi(17, 17, 1)
	b.Bge(12, 17, "a.row") // while x <= x2
	b.Mul(15, 11, 22)
	b.Add(15, 15, 4)
	b.Add(15, 15, 12)
	b.Add(15, 15, 22) // &cost[(y1+1)*G + x2]
	b.Addi(17, 11, 1)
	b.Label("a.col")
	b.Bge(13, 17, "a.colbody")
	b.J("a.done")
	b.Label("a.colbody")
	b.LwS(14, 15, 0)
	b.Add(16, 16, 14)
	b.Add(15, 15, 22)
	b.Addi(17, 17, 1)
	b.J("a.col")
	b.Label("a.done")
	b.Mov(18, 16)

	// Route B: column x1 from y1..y2, then row y2 from x1+1..x2.
	b.Li(16, 0)
	b.Mul(15, 11, 22)
	b.Add(15, 15, 4)
	b.Add(15, 15, 10) // &cost[y1*G + x1]
	b.Mov(17, 11)
	b.Label("b.col")
	b.LwS(14, 15, 0)
	b.Add(16, 16, 14)
	b.Add(15, 15, 22)
	b.Addi(17, 17, 1)
	b.Bge(13, 17, "b.col") // while y <= y2
	b.Mul(15, 13, 22)
	b.Add(15, 15, 4)
	b.Add(15, 15, 10)
	b.Addi(15, 15, 1) // &cost[y2*G + x1+1]
	b.Addi(17, 10, 1)
	b.Label("b.row")
	b.Bge(12, 17, "b.rowbody")
	b.J("b.done")
	b.Label("b.rowbody")
	b.LwS(14, 15, 0)
	b.Add(16, 16, 14)
	b.Addi(15, 15, 1)
	b.Addi(17, 17, 1)
	b.J("b.row")
	b.Label("b.done")
	b.Mov(19, 16)

	// Choose the cheaper route (ties go to A) and record its cost.
	b.Add(14, 7, 9)
	b.Blt(19, 18, "commitB")
	b.SwS(18, 14, 0)
	// Commit A: usage++ along row y1 x1..x2 and column x2 y1+1..y2.
	b.Mul(15, 11, 22)
	b.Add(15, 15, 5)
	b.Add(15, 15, 10)
	b.Mov(17, 10)
	b.Label("ca.row")
	b.Faa(14, 15, 0, 21)
	b.Addi(15, 15, 1)
	b.Addi(17, 17, 1)
	b.Bge(12, 17, "ca.row")
	b.Mul(15, 11, 22)
	b.Add(15, 15, 5)
	b.Add(15, 15, 12)
	b.Add(15, 15, 22)
	b.Addi(17, 11, 1)
	b.Label("ca.col")
	b.Bge(13, 17, "ca.colbody")
	b.J("task")
	b.Label("ca.colbody")
	b.Faa(14, 15, 0, 21)
	b.Add(15, 15, 22)
	b.Addi(17, 17, 1)
	b.J("ca.col")

	b.Label("commitB")
	b.SwS(19, 14, 0)
	b.Mul(15, 11, 22)
	b.Add(15, 15, 5)
	b.Add(15, 15, 10)
	b.Mov(17, 11)
	b.Label("cb.col")
	b.Faa(14, 15, 0, 21)
	b.Add(15, 15, 22)
	b.Addi(17, 17, 1)
	b.Bge(13, 17, "cb.col")
	b.Mul(15, 13, 22)
	b.Add(15, 15, 5)
	b.Add(15, 15, 10)
	b.Addi(15, 15, 1)
	b.Addi(17, 10, 1)
	b.Label("cb.row")
	b.Bge(12, 17, "cb.rowbody")
	b.J("task")
	b.Label("cb.rowbody")
	b.Faa(14, 15, 0, 21)
	b.Addi(15, 15, 1)
	b.Addi(17, 17, 1)
	b.J("cb.row")

	b.Label("done")
	b.Halt()
	raw := b.MustBuild()

	// Workload generation and reference routing.
	type wire struct{ x1, y1, x2, y2 int64 }
	ws := make([]wire, w)
	costs := make([]int64, g*g)
	r := rng.New(p.Seed)
	for i := range costs {
		costs[i] = r.Intn(20)
	}
	for i := range ws {
		// Wide, short wires: row walking dominates, like channel routing.
		x1 := r.Intn(g - 28)
		y1 := 2 + r.Intn(g-8)
		ws[i] = wire{
			x1: x1, y1: y1,
			x2: x1 + 8 + r.Intn(20),
			y2: y1 + r.Intn(4) - 2,
		}
		if ws[i].y2 < ws[i].y1 {
			ws[i].y1, ws[i].y2 = ws[i].y2, ws[i].y1
		}
	}
	wantOut := make([]int64, w)
	wantUse := make([]int64, g*g)
	for i, wr := range ws {
		var ca, cb int64
		for x := wr.x1; x <= wr.x2; x++ {
			ca += costs[wr.y1*g+x]
		}
		for y := wr.y1 + 1; y <= wr.y2; y++ {
			ca += costs[y*g+wr.x2]
		}
		for y := wr.y1; y <= wr.y2; y++ {
			cb += costs[y*g+wr.x1]
		}
		for x := wr.x1 + 1; x <= wr.x2; x++ {
			cb += costs[wr.y2*g+x]
		}
		if cb < ca {
			wantOut[i] = cb
			for y := wr.y1; y <= wr.y2; y++ {
				wantUse[y*g+wr.x1]++
			}
			for x := wr.x1 + 1; x <= wr.x2; x++ {
				wantUse[wr.y2*g+x]++
			}
		} else {
			wantOut[i] = ca
			for x := wr.x1; x <= wr.x2; x++ {
				wantUse[wr.y1*g+x]++
			}
			for y := wr.y1 + 1; y <= wr.y2; y++ {
				wantUse[y*g+wr.x2]++
			}
		}
	}

	return &app.App{
		Name:        "locus",
		Description: "standard-cell wire router (kernel substitute)",
		Problem:     fmt.Sprintf("%d wires on a %d x %d grid", w, g, g),
		Raw:         raw,
		TableProcs:  16,
		Init: func(sh *machine.Shared) {
			for i, c := range costs {
				sh.SetWordAt("cost", int64(i), c)
			}
			for i, wr := range ws {
				sh.SetWordAt("wires", int64(i)*4+0, wr.x1)
				sh.SetWordAt("wires", int64(i)*4+1, wr.y1)
				sh.SetWordAt("wires", int64(i)*4+2, wr.x2)
				sh.SetWordAt("wires", int64(i)*4+3, wr.y2)
			}
		},
		Check: func(sh *machine.Shared) error {
			for i := int64(0); i < w; i++ {
				if got := sh.WordAt("out", i); got != wantOut[i] {
					return fmt.Errorf("locus: wire %d cost = %d, want %d", i, got, wantOut[i])
				}
			}
			for i := int64(0); i < g*g; i++ {
				if got := sh.WordAt("usage", i); got != wantUse[i] {
					return fmt.Errorf("locus: usage[%d] = %d, want %d", i, got, wantUse[i])
				}
			}
			return nil
		},
	}
}
