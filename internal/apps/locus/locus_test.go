package locus_test

import (
	"testing"

	"mtsim/internal/apps/locus"
	"mtsim/internal/machine"
)

func TestCorrectAtAwkwardShapes(t *testing.T) {
	for _, p := range []locus.Params{
		{G: 32, Wires: 3, Seed: 1},
		{G: 40, Wires: 50, Seed: 7},
	} {
		a := locus.New(p)
		if _, err := a.Run(machine.Config{Procs: 2, Threads: 5, Model: machine.SwitchOnUseMiss, Latency: 60}); err != nil {
			t.Errorf("%+v: %v", p, err)
		}
	}
}

// TestShortRunLengthsResistGrouping: locus is the paper's hard case for
// intra-block grouping — loop-carried single-load walks give a grouping
// factor near 1 and a mean run-length around 8 even after grouping.
func TestShortRunLengthsResistGrouping(t *testing.T) {
	a := locus.New(locus.ParamsFor(0))
	res, err := a.Run(machine.Config{
		Procs: 8, Threads: 4, Model: machine.ExplicitSwitch,
		Latency: 200, CollectRunLengths: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if g := res.GroupingFactor(); g > 1.3 {
		t.Errorf("grouping = %.2f, want <= 1.3", g)
	}
	if m := res.MeanRunLength(); m < 4 || m > 14 {
		t.Errorf("mean run-length = %.1f, want ~8 (the paper's locus)", m)
	}
}

// TestWindowHitsHigh: the horizontal cost-array walks step through
// consecutive addresses, so the §5.2 window hit rate must be high —
// the paper measured 84%, the highest of the set, because "a compiler
// could easily group loads from a large two dimensional array".
func TestWindowHitsHigh(t *testing.T) {
	a := locus.New(locus.ParamsFor(0))
	res, err := a.Run(machine.Config{
		Procs: 8, Threads: 4, Model: machine.ExplicitSwitch,
		Latency: 200, GroupWindow: true, CollectRunLengths: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if hr := res.WindowHitRate(); hr < 0.7 {
		t.Errorf("window hit rate = %.2f, want >= 0.7 (paper: 84%%)", hr)
	}
	if g := res.GroupingFactor(); g < 1.8 {
		t.Errorf("window grouping = %.2f, want >= 1.8", g)
	}
}

// TestCommitsAreDeterministic: route choices depend only on the static
// congestion map, so the usage array must be identical across models and
// machine shapes (checked by App.Check; here we just run a contended
// shape under two models).
func TestCommitsAreDeterministic(t *testing.T) {
	a := locus.New(locus.ParamsFor(0))
	for _, m := range []machine.Model{machine.SwitchOnLoad, machine.ConditionalSwitch} {
		if _, err := a.Run(machine.Config{Procs: 8, Threads: 3, Model: m, Latency: 120}); err != nil {
			t.Errorf("%s: %v", m, err)
		}
	}
}
