package asm

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"mtsim/internal/isa"
	"mtsim/internal/prog"
)

// Parse reads assembly text (the format produced by Format) and builds a
// program. Symbol names from .shared/.local directives may be used where
// an immediate is expected, resolving to the symbol's base address, and
// as "sym+N" with a constant offset.
func Parse(r io.Reader) (*prog.Program, error) {
	p := &parser{
		b:    prog.NewBuilder("a.mt"),
		syms: make(map[string]int64),
		ops:  opTable(),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		if err := p.line(sc.Text()); err != nil {
			return nil, fmt.Errorf("asm: line %d: %w", lineno, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("asm: %w", err)
	}
	prg, err := p.b.Build()
	if err != nil {
		return nil, fmt.Errorf("asm: %w", err)
	}
	if p.name != "" {
		prg.Name = p.name
	}
	return prg, nil
}

// ParseString is Parse over a string.
func ParseString(s string) (*prog.Program, error) { return Parse(strings.NewReader(s)) }

// opTable maps mnemonics to opcodes.
func opTable() map[string]isa.Op {
	t := make(map[string]isa.Op, isa.NumOps)
	for o := 0; o < isa.NumOps; o++ {
		op := isa.Op(o)
		if op.Valid() {
			t[op.String()] = op
		}
	}
	return t
}

type parser struct {
	b    *prog.Builder
	name string
	syms map[string]int64
	ops  map[string]isa.Op
}

func (p *parser) line(raw string) error {
	// Strip comments.
	if i := strings.IndexByte(raw, ';'); i >= 0 {
		raw = raw[:i]
	}
	s := strings.TrimSpace(raw)
	if s == "" {
		return nil
	}
	// Directives.
	if strings.HasPrefix(s, ".program") || strings.HasPrefix(s, ".shared") || strings.HasPrefix(s, ".local") {
		return p.directive(s)
	}
	// Labels (possibly several per line, then an instruction).
	for {
		i := strings.IndexByte(s, ':')
		if i < 0 {
			break
		}
		name := strings.TrimSpace(s[:i])
		if name == "" || strings.ContainsAny(name, " \t,()") {
			break // a colon inside an operand would be invalid anyway
		}
		p.b.Label(name)
		s = strings.TrimSpace(s[i+1:])
		if s == "" {
			return nil
		}
	}
	return p.instr(s)
}

func (p *parser) directive(s string) error {
	f := strings.Fields(s)
	switch f[0] {
	case ".program":
		if len(f) != 2 {
			return fmt.Errorf(".program wants a name")
		}
		p.name = f[1]
		return nil
	case ".shared", ".local":
		if len(f) != 3 {
			return fmt.Errorf("%s wants: name size", f[0])
		}
		size, err := strconv.ParseInt(f[2], 10, 64)
		if err != nil || size <= 0 {
			return fmt.Errorf("%s %s: bad size %q", f[0], f[1], f[2])
		}
		var sym prog.Sym
		if f[0] == ".shared" {
			sym = p.b.Shared(f[1], size)
		} else {
			sym = p.b.Local(f[1], size)
		}
		if _, dup := p.syms[f[1]]; dup {
			return fmt.Errorf("duplicate symbol %q", f[1])
		}
		p.syms[f[1]] = sym.Base
		return nil
	}
	return fmt.Errorf("unknown directive %q", f[0])
}

// instr parses one instruction line.
func (p *parser) instr(s string) error {
	spin := false
	if strings.HasSuffix(s, "!spin") {
		spin = true
		s = strings.TrimSpace(strings.TrimSuffix(s, "!spin"))
	}
	mnemonic := s
	rest := ""
	if i := strings.IndexAny(s, " \t"); i >= 0 {
		mnemonic, rest = s[:i], strings.TrimSpace(s[i+1:])
	}
	op, ok := p.ops[mnemonic]
	if !ok {
		return fmt.Errorf("unknown mnemonic %q", mnemonic)
	}
	args := splitArgs(rest)
	in, err := p.operands(op, args)
	if err != nil {
		return fmt.Errorf("%s: %w", mnemonic, err)
	}
	if spin && !op.IsSharedAccess() {
		return fmt.Errorf("%s: !spin applies to shared accesses only", mnemonic)
	}
	in.Spin = spin

	// Branch-family instructions go through the builder's label fixups.
	if op.IsControl() && op != isa.Jr && op != isa.Halt {
		label := args[len(args)-1]
		switch op {
		case isa.Beq:
			p.b.Beq(in.Rs, in.Rt, label)
		case isa.Bne:
			p.b.Bne(in.Rs, in.Rt, label)
		case isa.Blt:
			p.b.Blt(in.Rs, in.Rt, label)
		case isa.Bge:
			p.b.Bge(in.Rs, in.Rt, label)
		case isa.Beqz:
			p.b.Beqz(in.Rs, label)
		case isa.Bnez:
			p.b.Bnez(in.Rs, label)
		case isa.J:
			p.b.J(label)
		case isa.Jal:
			p.b.Jal(label)
		}
		if spin {
			return fmt.Errorf("!spin applies to shared accesses only")
		}
		return nil
	}
	p.b.Emit(in)
	return nil
}

// splitArgs splits "r1, 8(r2), r3" into {"r1", "8(r2)", "r3"}.
func splitArgs(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// operands decodes the operand fields for op (branch targets are handled
// by the caller).
func (p *parser) operands(op isa.Op, args []string) (isa.Instr, error) {
	in := isa.Instr{Op: op}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("want %d operands, got %d", n, len(args))
		}
		return nil
	}
	switch {
	case op == isa.Nop || op == isa.Halt || op == isa.Switch || op == isa.CritEnter || op == isa.CritExit:
		return in, need(0)

	case op == isa.Fmov, op == isa.Fneg, op == isa.Fabs, op == isa.Fsqrt:
		// Two-operand FP forms, carved out before the Fadd..Fmax range.
		return in, p.regs2(&in, args, 'f', 'f')

	case op >= isa.Add && op <= isa.Sltu, op >= isa.Fadd && op <= isa.Fmax:
		if err := need(3); err != nil {
			return in, err
		}
		return in, p.regs3(&in, args, op.IsFPOp())

	case op >= isa.Feq && op <= isa.Fle:
		if err := need(3); err != nil {
			return in, err
		}
		var err error
		if in.Rd, err = reg(args[0], 'r'); err != nil {
			return in, err
		}
		if in.Rs, err = reg(args[1], 'f'); err != nil {
			return in, err
		}
		in.Rt, err = reg(args[2], 'f')
		return in, err

	case op >= isa.Addi && op <= isa.Slti:
		if err := need(3); err != nil {
			return in, err
		}
		var err error
		if in.Rd, err = reg(args[0], 'r'); err != nil {
			return in, err
		}
		if in.Rs, err = reg(args[1], 'r'); err != nil {
			return in, err
		}
		in.Imm, err = p.imm(args[2])
		return in, err

	case op == isa.Li:
		if err := need(2); err != nil {
			return in, err
		}
		var err error
		if in.Rd, err = reg(args[0], 'r'); err != nil {
			return in, err
		}
		in.Imm, err = p.imm(args[1])
		return in, err

	case op == isa.Mov:
		return in, p.regs2(&in, args, 'r', 'r')
	case op == isa.Mtf, op == isa.CvtIF:
		return in, p.regs2(&in, args, 'f', 'r')
	case op == isa.Mff, op == isa.CvtFI:
		return in, p.regs2(&in, args, 'r', 'f')

	case op == isa.Beq, op == isa.Bne, op == isa.Blt, op == isa.Bge:
		if err := need(3); err != nil {
			return in, err
		}
		var err error
		if in.Rs, err = reg(args[0], 'r'); err != nil {
			return in, err
		}
		in.Rt, err = reg(args[1], 'r')
		return in, err
	case op == isa.Beqz, op == isa.Bnez:
		if err := need(2); err != nil {
			return in, err
		}
		var err error
		in.Rs, err = reg(args[0], 'r')
		return in, err
	case op == isa.J, op == isa.Jal:
		return in, need(1)
	case op == isa.Jr, op == isa.Use:
		if err := need(1); err != nil {
			return in, err
		}
		var err error
		in.Rs, err = reg(args[0], 'r')
		return in, err

	case op == isa.Lw, op == isa.Ld, op == isa.LwS, op == isa.LdS:
		return in, p.memOp(&in, args, 'r', false)
	case op == isa.Flw, op == isa.FlwS:
		return in, p.memOp(&in, args, 'f', false)
	case op == isa.Sw, op == isa.Sd, op == isa.SwS, op == isa.SdS:
		return in, p.memOp(&in, args, 'r', true)
	case op == isa.Fsw, op == isa.FswS:
		return in, p.memOp(&in, args, 'f', true)

	case op == isa.Faa:
		if err := need(3); err != nil {
			return in, err
		}
		var err error
		if in.Rd, err = reg(args[0], 'r'); err != nil {
			return in, err
		}
		if in.Imm, in.Rs, err = p.addr(args[1]); err != nil {
			return in, err
		}
		in.Rt, err = reg(args[2], 'r')
		return in, err
	}
	return in, fmt.Errorf("unhandled opcode")
}

func (p *parser) regs3(in *isa.Instr, args []string, fp bool) error {
	bank := byte('r')
	if fp {
		bank = 'f'
	}
	var err error
	if in.Rd, err = reg(args[0], bank); err != nil {
		return err
	}
	if in.Rs, err = reg(args[1], bank); err != nil {
		return err
	}
	in.Rt, err = reg(args[2], bank)
	return err
}

func (p *parser) regs2(in *isa.Instr, args []string, dBank, sBank byte) error {
	if len(args) != 2 {
		return fmt.Errorf("want 2 operands, got %d", len(args))
	}
	var err error
	if in.Rd, err = reg(args[0], dBank); err != nil {
		return err
	}
	in.Rs, err = reg(args[1], sBank)
	return err
}

// memOp parses "rX, imm(rY)" loads/stores; stores put the value register
// in Rt, loads in Rd.
func (p *parser) memOp(in *isa.Instr, args []string, bank byte, store bool) error {
	if len(args) != 2 {
		return fmt.Errorf("want 2 operands, got %d", len(args))
	}
	v, err := reg(args[0], bank)
	if err != nil {
		return err
	}
	if store {
		in.Rt = v
	} else {
		in.Rd = v
	}
	in.Imm, in.Rs, err = p.addr(args[1])
	return err
}

// addr parses "imm(rN)" where imm may be an integer or symbol[+off].
func (p *parser) addr(s string) (int64, uint8, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad address %q (want imm(rN))", s)
	}
	immS := strings.TrimSpace(s[:open])
	regS := strings.TrimSpace(s[open+1 : len(s)-1])
	var imm int64
	var err error
	if immS != "" {
		imm, err = p.imm(immS)
		if err != nil {
			return 0, 0, err
		}
	}
	r, err := reg(regS, 'r')
	return imm, r, err
}

// imm parses an integer, a symbol name, or "sym+N" / "sym-N".
func (p *parser) imm(s string) (int64, error) {
	if v, err := strconv.ParseInt(s, 0, 64); err == nil {
		return v, nil
	}
	name, off := s, int64(0)
	for _, sep := range []byte{'+', '-'} {
		if i := strings.LastIndexByte(s, sep); i > 0 {
			o, err := strconv.ParseInt(s[i:], 10, 64)
			if err == nil {
				name, off = s[:i], o
				break
			}
		}
	}
	base, ok := p.syms[name]
	if !ok {
		return 0, fmt.Errorf("bad immediate %q (not a number or known symbol)", s)
	}
	return base + off, nil
}

// reg parses "r12" or "f3" according to the expected bank.
func reg(s string, bank byte) (uint8, error) {
	if len(s) < 2 || (s[0] != bank) {
		return 0, fmt.Errorf("bad %c-register %q", bank, s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= isa.NumIntRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return uint8(n), nil
}
