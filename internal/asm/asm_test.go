package asm_test

import (
	"fmt"
	"strings"
	"testing"

	"mtsim/internal/asm"
	"mtsim/internal/machine"
	"mtsim/internal/prog"
	"mtsim/internal/rng"
)

const sample = `
; a tiny self-contained program
.program demo
.shared data 16
.shared out 4
.local scratch 8

start:
	li	r4, data        ; symbol -> base address
	li	r5, 0
	li	r6, 8
loop:
	lw.s	r7, 0(r4)
	add	r5, r5, r7
	addi	r4, r4, 1
	addi	r6, r6, -1
	bnez	r6, loop
	li	r8, out
	sw.s	r5, 0(r8)
	faa	r9, 1(r8), r5 !spin
	halt
`

func TestParseAndRun(t *testing.T) {
	p, err := asm.ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "demo" {
		t.Errorf("name = %q", p.Name)
	}
	res, err := machine.RunChecked(machine.Config{Model: machine.Ideal}, p,
		func(sh *machine.Shared) {
			for i := int64(0); i < 8; i++ {
				sh.SetWordAt("data", i, i+1)
			}
		},
		func(sh *machine.Shared) error {
			if got := sh.WordAt("out", 0); got != 36 {
				return fmt.Errorf("out = %d, want 36", got)
			}
			if got := sh.WordAt("out", 1); got != 36 {
				return fmt.Errorf("faa target = %d, want 36", got)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	// The !spin faa must be excluded from bandwidth accounting.
	if res.Traffic.SpinCount != 2 { // faa request counts as 2 messages (req+reply)
		t.Errorf("spin messages = %d, want 2", res.Traffic.SpinCount)
	}
}

func TestRoundTripPreservesSemantics(t *testing.T) {
	p1, err := asm.ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	text := asm.Format(p1)
	p2, err := asm.ParseString(text)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, text)
	}
	if len(p1.Instrs) != len(p2.Instrs) {
		t.Fatalf("instr count %d != %d", len(p1.Instrs), len(p2.Instrs))
	}
	for i := range p1.Instrs {
		if p1.Instrs[i] != p2.Instrs[i] {
			t.Errorf("instr %d: %v != %v", i, p1.Instrs[i], p2.Instrs[i])
		}
	}
}

// TestRoundTripFuzz: random generated programs must survive
// format -> parse -> format unchanged (fixed point after one trip).
func TestRoundTripFuzz(t *testing.T) {
	for seed := uint64(1); seed <= 60; seed++ {
		p := genProgram(seed)
		text1 := asm.Format(p)
		q, err := asm.Parse(strings.NewReader(text1))
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, text1)
		}
		if len(q.Instrs) != len(p.Instrs) {
			t.Fatalf("seed %d: instr count %d != %d", seed, len(q.Instrs), len(p.Instrs))
		}
		for i := range p.Instrs {
			if p.Instrs[i] != q.Instrs[i] {
				t.Fatalf("seed %d instr %d: %v != %v", seed, i, p.Instrs[i], q.Instrs[i])
			}
		}
		text2 := asm.Format(q)
		if text1 != text2 {
			t.Fatalf("seed %d: format not a fixed point\n--- first\n%s\n--- second\n%s", seed, text1, text2)
		}
	}
}

// genProgram emits a random but well-formed program covering most operand
// classes, including labels and branches.
func genProgram(seed uint64) *prog.Program {
	r := rng.New(seed)
	b := prog.NewBuilder(fmt.Sprintf("fuzz%d", seed))
	b.Shared("mem", 128)
	b.Local("tmp", 32)
	reg := func() uint8 { return uint8(4 + r.Intn(20)) }
	freg := func() uint8 { return uint8(r.Intn(12)) }
	n := 10 + int(r.Intn(30))
	for i := 0; i < n; i++ {
		switch r.Intn(16) {
		case 0:
			b.Li(reg(), r.Intn(100)-50)
		case 1:
			b.Add(reg(), reg(), reg())
		case 2:
			b.Slli(reg(), reg(), r.Intn(8))
		case 3:
			if r.Intn(2) == 0 {
				b.Fadd(freg(), freg(), freg())
			} else {
				b.Fneg(freg(), freg()) // 2-operand FP form
			}
		case 4:
			if r.Intn(2) == 0 {
				b.Flt(reg(), freg(), freg())
			} else {
				b.Fsqrt(freg(), freg())
			}
		case 5:
			b.Mtf(freg(), reg())
		case 6:
			b.Mff(reg(), freg())
		case 7:
			b.LwS(reg(), 4, r.Intn(64))
		case 8:
			b.SdS(uint8(4+r.Intn(19)), 4, r.Intn(64))
		case 9:
			b.FlwS(freg(), 4, r.Intn(64))
		case 10:
			b.Faa(reg(), 4, r.Intn(64), reg())
		case 11:
			b.Lw(reg(), 0, r.Intn(32))
		case 12:
			b.Fsw(freg(), 0, r.Intn(32))
		case 13:
			b.Switch()
		case 14:
			b.Use(reg())
		case 15:
			l := b.GenLabel("skip")
			b.Beqz(reg(), l)
			b.Nop()
			b.Label(l)
		}
	}
	b.Halt()
	return b.MustBuild()
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unknown mnemonic":  "\tfrobnicate r1, r2\n",
		"bad register":      "\tadd r1, r2, r99\n",
		"bad operand count": "\tadd r1, r2\n",
		"bad directive":     ".wibble x 3\n",
		"bad size":          ".shared x -2\n",
		"unknown symbol":    "\tli r4, nosuch\n\thalt\n",
		"undefined label":   "\tj nowhere\n\thalt\n",
		"bad address":       "\tlw.s r4, r5\n",
		"spin on alu":       "\tadd r1, r2, r3 !spin\n",
		"fp reg as int":     "\tadd r1, f2, r3\n",
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := asm.ParseString(src); err == nil {
				t.Errorf("accepted %q", src)
			}
		})
	}
}

func TestSymbolOffsets(t *testing.T) {
	src := `
.shared a 10
.shared b 10
	li r4, b
	li r5, b+3
	li r6, a+9
	halt
`
	p, err := asm.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Instrs[0].Imm != 10 || p.Instrs[1].Imm != 13 || p.Instrs[2].Imm != 9 {
		t.Errorf("immediates = %d, %d, %d", p.Instrs[0].Imm, p.Instrs[1].Imm, p.Instrs[2].Imm)
	}
}

func TestFormatBenchmarkAppsParseBack(t *testing.T) {
	// Every benchmark program must disassemble and re-assemble exactly.
	// (Uses the sor program via its package to avoid an import cycle on
	// apps; the full-set version lives in the apps tests.)
	src := asm.Format(mustSor(t))
	p, err := asm.ParseString(src)
	if err != nil {
		t.Fatalf("%v", err)
	}
	if len(p.Instrs) == 0 {
		t.Fatal("empty parse")
	}
}

func mustSor(t *testing.T) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("mini-sor")
	grid := b.Shared("grid", 64)
	b.Li(4, grid.Base)
	b.FlwS(1, 4, 0)
	b.FlwS(2, 4, 1)
	b.Fadd(1, 1, 2)
	b.FswS(1, 4, 2)
	b.Halt()
	return b.MustBuild()
}
