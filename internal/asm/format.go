// Package asm converts programs to and from a textual assembly format
// (".mt" files), so kernels can be inspected, diffed, written by hand,
// and round-tripped through the optimizer from the command line
// (cmd/mtasm, cmd/mtopt).
//
// The format:
//
//	; comment
//	.program sieve
//	.shared flags 30000     ; shared segment symbol, size in cells
//	.local  buf   64        ; per-thread local memory symbol
//
//	start:
//	        li      r4, flags       ; symbol names resolve to base addresses
//	        lw.s    r5, 0(r4)       ; shared load
//	        faa     r7, 0(r4), r10 !spin
//	        beq     r5, r6, start
//	        switch
//	        halt
//
// A trailing "!spin" marks synchronization spin traffic (excluded from
// bandwidth statistics, as in the paper's §6.1 footnote 2).
package asm

import (
	"fmt"
	"sort"
	"strings"

	"mtsim/internal/isa"
	"mtsim/internal/prog"
)

// Format renders a program as assembly text. Every branch target gets a
// label; targets without a user label receive a synthetic ".L<index>".
func Format(p *prog.Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, ".program %s\n", p.Name)
	for _, s := range p.Shared.Symbols() {
		fmt.Fprintf(&b, ".shared %s %d\n", s.Name, s.Size)
	}
	for _, s := range p.Local.Symbols() {
		fmt.Fprintf(&b, ".local %s %d\n", s.Name, s.Size)
	}
	b.WriteByte('\n')

	labels := labelTable(p)
	for i, in := range p.Instrs {
		for _, l := range labels[int32(i)] {
			fmt.Fprintf(&b, "%s:\n", l)
		}
		fmt.Fprintf(&b, "\t%s\n", formatInstr(in, labels))
	}
	for _, l := range labels[int32(len(p.Instrs))] {
		fmt.Fprintf(&b, "%s:\n", l)
	}
	return b.String()
}

// labelTable maps instruction indices to their label names, inventing
// ".L<idx>" names for branch targets that lack one.
func labelTable(p *prog.Program) map[int32][]string {
	t := make(map[int32][]string)
	for name, idx := range p.Labels {
		t[idx] = append(t[idx], name)
	}
	for idx := range t {
		sort.Strings(t[idx])
	}
	for _, in := range p.Instrs {
		if in.Op.IsControl() && in.Op != isa.Jr && in.Op != isa.Halt {
			if len(t[in.Target]) == 0 {
				t[in.Target] = []string{fmt.Sprintf(".L%d", in.Target)}
			}
		}
	}
	return t
}

// target returns the first label naming idx.
func target(idx int32, labels map[int32][]string) string {
	if ls := labels[idx]; len(ls) > 0 {
		return ls[0]
	}
	return fmt.Sprintf("@%d", idx)
}

func formatInstr(in isa.Instr, labels map[int32][]string) string {
	op := in.Op
	spin := ""
	if in.Spin {
		spin = " !spin"
	}
	switch {
	case op == isa.Nop || op == isa.Halt || op == isa.Switch || op == isa.CritEnter || op == isa.CritExit:
		return op.String() + spin
	case op >= isa.Add && op <= isa.Sltu:
		return fmt.Sprintf("%s\tr%d, r%d, r%d", op, in.Rd, in.Rs, in.Rt)
	case op >= isa.Addi && op <= isa.Slti:
		return fmt.Sprintf("%s\tr%d, r%d, %d", op, in.Rd, in.Rs, in.Imm)
	case op == isa.Li:
		return fmt.Sprintf("li\tr%d, %d", in.Rd, in.Imm)
	case op == isa.Mov:
		return fmt.Sprintf("mov\tr%d, r%d", in.Rd, in.Rs)
	case op == isa.Fmov, op == isa.Fneg, op == isa.Fabs, op == isa.Fsqrt:
		return fmt.Sprintf("%s\tf%d, f%d", op, in.Rd, in.Rs)
	case op == isa.Mtf, op == isa.CvtIF:
		return fmt.Sprintf("%s\tf%d, r%d", op, in.Rd, in.Rs)
	case op == isa.Mff, op == isa.CvtFI:
		return fmt.Sprintf("%s\tr%d, f%d", op, in.Rd, in.Rs)
	case op >= isa.Fadd && op <= isa.Fmax:
		return fmt.Sprintf("%s\tf%d, f%d, f%d", op, in.Rd, in.Rs, in.Rt)
	case op >= isa.Feq && op <= isa.Fle:
		return fmt.Sprintf("%s\tr%d, f%d, f%d", op, in.Rd, in.Rs, in.Rt)
	case op == isa.Beq || op == isa.Bne || op == isa.Blt || op == isa.Bge:
		return fmt.Sprintf("%s\tr%d, r%d, %s", op, in.Rs, in.Rt, target(in.Target, labels))
	case op == isa.Beqz || op == isa.Bnez:
		return fmt.Sprintf("%s\tr%d, %s", op, in.Rs, target(in.Target, labels))
	case op == isa.J || op == isa.Jal:
		return fmt.Sprintf("%s\t%s", op, target(in.Target, labels))
	case op == isa.Jr:
		return fmt.Sprintf("jr\tr%d", in.Rs)
	case op == isa.Lw || op == isa.Ld || op == isa.LwS || op == isa.LdS:
		return fmt.Sprintf("%s\tr%d, %d(r%d)%s", op, in.Rd, in.Imm, in.Rs, spin)
	case op == isa.Flw || op == isa.FlwS:
		return fmt.Sprintf("%s\tf%d, %d(r%d)%s", op, in.Rd, in.Imm, in.Rs, spin)
	case op == isa.Sw || op == isa.Sd || op == isa.SwS || op == isa.SdS:
		return fmt.Sprintf("%s\tr%d, %d(r%d)%s", op, in.Rt, in.Imm, in.Rs, spin)
	case op == isa.Fsw || op == isa.FswS:
		return fmt.Sprintf("%s\tf%d, %d(r%d)%s", op, in.Rt, in.Imm, in.Rs, spin)
	case op == isa.Faa:
		return fmt.Sprintf("faa\tr%d, %d(r%d), r%d%s", in.Rd, in.Imm, in.Rs, in.Rt, spin)
	case op == isa.Use:
		return fmt.Sprintf("use\tr%d", in.Rs)
	}
	return op.String()
}
