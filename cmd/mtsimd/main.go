// Command mtsimd serves simulations over HTTP/JSON: the library's
// context-first API behind bounded admission control, per-request
// deadlines, and graceful drain. See internal/serve for the endpoints
// and the README for a curl quick-start.
//
// Usage:
//
//	mtsimd [-addr :8080] [-workers N] [-queue N] [-timeout 60s] [-drain 30s]
//	       [-journal PATH] [-checkpoint-every N]
//	       [-tenants name:weight:rate:burst[:apikey],...] [-quota rate:burst]
//	       [-fair-share] [-dispatchers N]
//	       [-node-id ID -peers id1=url1,id2=url2,...] [-heartbeat 500ms]
//	       [-lease-ttl 3s] [-replicas 2]
//	       [-breaker-threshold 5] [-breaker-cooldown 2s] [-hedge-fraction 0.1]
//	       [-brownout-enter 2s] [-brownout-exit 3s]
//	       [-chaos SCHEDULE -chaos-seed N]
//
// -tenants declares the serving plane's tenants: a fair-share weight
// for the async scheduler, a token-bucket admission quota (requests/s
// and burst; 0:0 = unlimited) and optionally an API key. Requests
// carry their tenant as "Authorization: Bearer <apikey>" or an
// X-Tenant-ID header; everything else is the "anonymous" tenant under
// the -quota default. -fair-share (default on) drains async jobs
// deficit-round-robin across per-tenant queues so one tenant's flood
// cannot starve another; per-tenant usage shows up in /v1/healthz,
// /v2/healthz and expvar.
//
// -journal enables crash-tolerant async batch jobs: /v1/batch requests
// carrying an Idempotency-Key are journaled to PATH (write-ahead,
// fsync'd), checkpointed every N cycles, and survive even a SIGKILL —
// on restart the journal replays and unfinished jobs resume from their
// latest checkpoint to byte-identical responses.
//
// -node-id and -peers (which require -journal) join the daemon to a
// multi-node fleet: peers probe each other's health, a consistent-hash
// ring routes every request to its owner node (any node can front the
// cluster and forwards the rest), async job state replicates to ring
// successors, and when a node dies its expired job leases are claimed
// and resumed by the survivors — still to byte-identical responses. A
// graceful drain hands owned jobs to live successors before exit. See
// GET /v1/cluster for topology, health, breakers, and the lease table.
//
// Resilience knobs: every intra-cluster call feeds a per-peer circuit
// breaker (-breaker-threshold consecutive transport failures open it;
// after -breaker-cooldown a single half-open probe decides). Forwarded
// idempotent reads may be hedged to the next ring successor after a
// latency-derived delay, with -hedge-fraction bounding the extra
// traffic. -brownout-enter/-brownout-exit tune the hysteretic overload
// mode that sheds metrics collection and new SSE subscriptions before
// the server refuses real work.
//
// -chaos arms a deterministic fault-injection schedule on the node's
// outbound intra-cluster transport — partitions, drops, delays, and
// reply corruption per peer and time window, every decision drawn from
// -chaos-seed so a run replays exactly. Completed simulation results
// stay byte-identical under any schedule; only availability and
// latency degrade. For testing fleets, not production.
//
// SIGTERM/SIGINT starts a graceful drain: listeners close immediately,
// in-flight simulations run to completion until -drain expires, then
// their contexts are canceled and the event loops unwind cooperatively
// (an async job aborted this way stays resumable). The journal is
// flushed and closed before exit. A clean drain (either way) exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"mtsim/internal/cluster"
	"mtsim/internal/serve"
)

// parseTenants decodes the -tenants flag:
// "name:weight:rate:burst[:apikey],..." — weight is the fair-share
// scheduler weight, rate/burst the token-bucket admission quota
// (0:0 = unlimited), apikey an optional Bearer credential that
// resolves to the tenant.
func parseTenants(s string) ([]serve.TenantConfig, error) {
	var out []serve.TenantConfig
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) < 4 || len(fields) > 5 {
			return nil, fmt.Errorf("bad -tenants entry %q, want name:weight:rate:burst[:apikey]", part)
		}
		tc := serve.TenantConfig{Name: fields[0]}
		if tc.Name == "" {
			return nil, fmt.Errorf("bad -tenants entry %q: empty name", part)
		}
		var err error
		if tc.Weight, err = strconv.Atoi(fields[1]); err != nil || tc.Weight < 0 {
			return nil, fmt.Errorf("bad -tenants entry %q: weight %q", part, fields[1])
		}
		rate, err := strconv.ParseFloat(fields[2], 64)
		if err != nil || rate < 0 {
			return nil, fmt.Errorf("bad -tenants entry %q: rate %q", part, fields[2])
		}
		burst, err := strconv.Atoi(fields[3])
		if err != nil || burst < 0 {
			return nil, fmt.Errorf("bad -tenants entry %q: burst %q", part, fields[3])
		}
		tc.Rate, tc.Burst = rate, burst
		if len(fields) == 5 && fields[4] != "" {
			tc.APIKeys = []string{fields[4]}
		}
		out = append(out, tc)
	}
	return out, nil
}

// parseQuota decodes the -quota flag: "rate:burst" (the default
// admission quota of tenants not named by -tenants; empty or 0:0 =
// unlimited).
func parseQuota(s string) (serve.Quota, error) {
	if s == "" {
		return serve.Quota{}, nil
	}
	rateStr, burstStr, ok := strings.Cut(s, ":")
	if !ok {
		return serve.Quota{}, fmt.Errorf("bad -quota %q, want rate:burst", s)
	}
	rate, err := strconv.ParseFloat(rateStr, 64)
	if err != nil || rate < 0 {
		return serve.Quota{}, fmt.Errorf("bad -quota %q: rate %q", s, rateStr)
	}
	burst, err := strconv.Atoi(burstStr)
	if err != nil || burst < 0 {
		return serve.Quota{}, fmt.Errorf("bad -quota %q: burst %q", s, burstStr)
	}
	return serve.Quota{Rate: rate, Burst: burst}, nil
}

// parsePeers decodes the -peers flag: "id1=url1,id2=url2,...".
func parsePeers(s string) ([]cluster.Peer, error) {
	var peers []cluster.Peer
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("bad -peers entry %q, want id=url", part)
		}
		peers = append(peers, cluster.Peer{ID: id, URL: strings.TrimSuffix(url, "/")})
	}
	if len(peers) == 0 {
		return nil, errors.New("-peers is empty")
	}
	return peers, nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "max concurrently running requests (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "max requests waiting beyond the running ones (0 = default 64); excess gets 429")
	sessWorkers := flag.Int("session-workers", 0, "per-session simulation pool width (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "default per-request deadline (0 = 60s)")
	maxTimeout := flag.Duration("max-timeout", 0, "cap on client-requested deadlines (0 = 10m)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain window")
	journal := flag.String("journal", "", "write-ahead job journal path; enables crash-tolerant async batch jobs")
	ckptEvery := flag.Int64("checkpoint-every", 0, "cycles between async-job checkpoints (0 = 100000)")
	tenants := flag.String("tenants", "", "declared tenants, name:weight:rate:burst[:apikey],...")
	quota := flag.String("quota", "", "default admission quota for undeclared tenants, rate:burst (empty = unlimited)")
	fairShare := flag.Bool("fair-share", true, "drain async jobs deficit-round-robin per tenant (false = legacy FIFO)")
	dispatchers := flag.Int("dispatchers", 0, "async dispatcher pool size (0 = workers/2)")
	nodeID := flag.String("node-id", "", "this node's cluster id; enables cluster mode with -peers (requires -journal)")
	peers := flag.String("peers", "", "comma-separated id=url cluster membership, self included")
	heartbeat := flag.Duration("heartbeat", 0, "cluster health-probe period (0 = 500ms)")
	leaseTTL := flag.Duration("lease-ttl", 0, "job lease validity without renewal (0 = 3s)")
	replicas := flag.Int("replicas", 0, "nodes holding each async job's state, owner included (0 = 2)")
	chaos := flag.String("chaos", "", "seeded fault-injection schedule for intra-cluster calls, e.g. \"peer=n2,from=2s,to=8s,partition;peer=*,delay=0.3@50ms-200ms\" (requires cluster mode)")
	chaosSeed := flag.Uint64("chaos-seed", 1, "root seed of the chaos schedule's deterministic decision stream")
	breakerThreshold := flag.Int("breaker-threshold", 0, "consecutive transport failures that trip a peer's circuit breaker (0 = 5, negative disables)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "open-breaker cooldown before a half-open probe (0 = 2s)")
	hedgeFraction := flag.Float64("hedge-fraction", 0, "fraction of forwarded reads allowed a hedged duplicate (0 = 0.1, negative disables)")
	brownoutEnter := flag.Duration("brownout-enter", 0, "sustained high queue saturation before brownout mode (0 = 2s, negative disables)")
	brownoutExit := flag.Duration("brownout-exit", 0, "sustained low queue saturation before brownout lifts (0 = 3s)")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "mtsimd: unexpected argument %q\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}

	tenantList, err := parseTenants(*tenants)
	if err != nil {
		log.Fatalf("mtsimd: %v", err)
	}
	defQuota, err := parseQuota(*quota)
	if err != nil {
		log.Fatalf("mtsimd: %v", err)
	}
	scheduler := serve.SchedulerFair
	if !*fairShare {
		scheduler = serve.SchedulerFIFO
	}
	srv := serve.New(serve.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		SessionWorkers:  *sessWorkers,
		DefaultTimeout:  *timeout,
		MaxTimeout:      *maxTimeout,
		CheckpointEvery: *ckptEvery,
		Tenants:         tenantList,
		DefaultQuota:    defQuota,
		Scheduler:       scheduler,
		Dispatchers:     *dispatchers,
		HedgeFraction:   *hedgeFraction,
		BrownoutEnter:   *brownoutEnter,
		BrownoutExit:    *brownoutExit,
	})
	srv.PublishVars()
	if *journal != "" {
		replayed, err := srv.EnableJournal(*journal)
		if err != nil {
			log.Fatalf("mtsimd: %v", err)
		}
		log.Printf("mtsimd: journal %s: %d jobs replayed", *journal, replayed)
	}
	if (*nodeID == "") != (*peers == "") {
		log.Fatalf("mtsimd: -node-id and -peers must be set together")
	}
	if *chaos != "" && *nodeID == "" {
		log.Fatalf("mtsimd: -chaos requires cluster mode (-node-id and -peers)")
	}
	if *nodeID != "" {
		peerList, err := parsePeers(*peers)
		if err != nil {
			log.Fatalf("mtsimd: %v", err)
		}
		cfg := cluster.Config{
			Self:             *nodeID,
			Peers:            peerList,
			HeartbeatEvery:   *heartbeat,
			LeaseTTL:         *leaseTTL,
			Replicas:         *replicas,
			BreakerThreshold: *breakerThreshold,
			BreakerCooldown:  *breakerCooldown,
		}
		if *chaos != "" {
			rules, err := cluster.ParseChaos(*chaos)
			if err != nil {
				log.Fatalf("mtsimd: %v", err)
			}
			cfg.Transport = cluster.NewChaosTransport(*chaosSeed, rules, peerList, nil)
			log.Printf("mtsimd: chaos transport armed: %d rules, seed %d", len(rules), *chaosSeed)
		}
		node, err := srv.EnableCluster(cfg)
		if err != nil {
			log.Fatalf("mtsimd: %v", err)
		}
		log.Printf("mtsimd: cluster node %s joined a %d-node fleet (%d replicas per job)",
			node.Self(), len(peerList), node.Replicas())
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(*addr) }()
	log.Printf("mtsimd: listening on %s", *addr)

	select {
	case err := <-errc:
		// Listener failed before any signal (bad addr, port in use).
		log.Fatalf("mtsimd: %v", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	log.Printf("mtsimd: draining (up to %s)", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("mtsimd: drain window expired, canceled remaining runs: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("mtsimd: %v", err)
	}
	log.Printf("mtsimd: drained, bye")
}
