// Command mtsimd serves simulations over HTTP/JSON: the library's
// context-first API behind bounded admission control, per-request
// deadlines, and graceful drain. See internal/serve for the endpoints
// and the README for a curl quick-start.
//
// Usage:
//
//	mtsimd [-addr :8080] [-workers N] [-queue N] [-timeout 60s] [-drain 30s]
//	       [-journal PATH] [-checkpoint-every N]
//
// -journal enables crash-tolerant async batch jobs: /v1/batch requests
// carrying an Idempotency-Key are journaled to PATH (write-ahead,
// fsync'd), checkpointed every N cycles, and survive even a SIGKILL —
// on restart the journal replays and unfinished jobs resume from their
// latest checkpoint to byte-identical responses.
//
// SIGTERM/SIGINT starts a graceful drain: listeners close immediately,
// in-flight simulations run to completion until -drain expires, then
// their contexts are canceled and the event loops unwind cooperatively
// (an async job aborted this way stays resumable). The journal is
// flushed and closed before exit. A clean drain (either way) exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mtsim/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "max concurrently running requests (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "max requests waiting beyond the running ones (0 = default 64); excess gets 429")
	sessWorkers := flag.Int("session-workers", 0, "per-session simulation pool width (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "default per-request deadline (0 = 60s)")
	maxTimeout := flag.Duration("max-timeout", 0, "cap on client-requested deadlines (0 = 10m)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain window")
	journal := flag.String("journal", "", "write-ahead job journal path; enables crash-tolerant async batch jobs")
	ckptEvery := flag.Int64("checkpoint-every", 0, "cycles between async-job checkpoints (0 = 100000)")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "mtsimd: unexpected argument %q\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}

	srv := serve.New(serve.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		SessionWorkers:  *sessWorkers,
		DefaultTimeout:  *timeout,
		MaxTimeout:      *maxTimeout,
		CheckpointEvery: *ckptEvery,
	})
	srv.PublishVars()
	if *journal != "" {
		replayed, err := srv.EnableJournal(*journal)
		if err != nil {
			log.Fatalf("mtsimd: %v", err)
		}
		log.Printf("mtsimd: journal %s: %d jobs replayed", *journal, replayed)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(*addr) }()
	log.Printf("mtsimd: listening on %s", *addr)

	select {
	case err := <-errc:
		// Listener failed before any signal (bad addr, port in use).
		log.Fatalf("mtsimd: %v", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	log.Printf("mtsimd: draining (up to %s)", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("mtsimd: drain window expired, canceled remaining runs: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("mtsimd: %v", err)
	}
	log.Printf("mtsimd: drained, bye")
}
