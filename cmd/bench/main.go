// Command bench is the repeatable performance-regression harness: it
// runs a fixed suite of simulator benchmarks — the event-loop hot loop
// plus one verified run per benchmark application — and reads/writes
// BENCH_*.json records with a stable schema that later PRs append to.
//
// Two kinds of numbers are recorded per benchmark:
//
//   - sim_instrs / sim_cycles: the simulated work. These are
//     deterministic (the simulator is bit-reproducible), so -check
//     compares them exactly on any machine; a mismatch means the
//     simulator's behavior changed, not that the host was slow.
//   - ns_per_op: wall time. Only comparable on the same machine;
//     -timing=false skips measuring it (the CI mode), and -check only
//     enforces the -tolerance bound when both records carry timings.
//
// Usage:
//
//	bench -out BENCH_PR6.json -label pr6          # record
//	bench -baseline BENCH_PR6.json -check         # enforce (exit 1 on regression)
//	bench -baseline BENCH_PR6.json -check -timing=false   # CI: determinism only
//	bench -bench machine-hot-loop -cpuprofile cpu.pprof   # profile one benchmark
//	bench compare BENCH_PR3.json BENCH_PR6.json   # diff two records
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"regexp"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"mtsim"
)

// SchemaVersion identifies the BENCH_*.json layout.
const SchemaVersion = 1

// Record is the on-disk benchmark report.
type Record struct {
	Schema int    `json:"schema"`
	Label  string `json:"label,omitempty"`
	Go     string `json:"go"`
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	CPUs   int    `json:"cpus"`
	Scale  string `json:"scale"`
	// Timing records whether ns_per_op was measured (false: the
	// determinism-only CI mode wrote zeros).
	Timing     bool          `json:"timing"`
	Benchmarks []BenchResult `json:"benchmarks"`
}

// BenchResult is one benchmark's measurements.
type BenchResult struct {
	Name     string `json:"name"`
	Iters    int    `json:"iters"`
	NsPerOp  int64  `json:"ns_per_op"`
	SimInstr int64  `json:"sim_instrs"`
	SimCycle int64  `json:"sim_cycles"`
}

// benchmark is one suite entry: run executes a single operation under
// ctx and reports the simulated work it performed.
type benchmark struct {
	name string
	run  func(ctx context.Context) (simInstr, simCycle int64, err error)
}

// oneRun adapts a single-simulation benchmark body to the suite entry
// signature.
func oneRun(f func(ctx context.Context) (*mtsim.Result, error)) func(context.Context) (int64, int64, error) {
	return func(ctx context.Context) (int64, int64, error) {
		res, err := f(ctx)
		if err != nil {
			return 0, 0, err
		}
		return res.Instrs, res.Cycles, nil
	}
}

// suite builds the fixed benchmark list: the event-loop hot loop
// (verification off, high processor count, so dispatch and scheduling
// dominate), one verified paper-configuration run per application, and
// a session-batch benchmark that times the measurement layer itself
// (memo, singleflight, worker pool) over the context-first batch API.
func suite() []benchmark {
	bs := []benchmark{{
		name: "machine-hot-loop",
		run: oneRun(func(ctx context.Context) (*mtsim.Result, error) {
			a := mtsim.MustNewApp("sieve", mtsim.Quick)
			// DispatchCompiled rather than Auto so the benchmark fails
			// loudly if the compiled engine ever becomes ineligible here
			// instead of silently timing the interpreter.
			cfg := mtsim.Config{Procs: 64, Threads: 4, Model: mtsim.SwitchOnLoad, Latency: 200,
				DispatchMode: mtsim.DispatchCompiled}
			return mtsim.RunContext(ctx, cfg, a.Raw, a.Init)
		}),
	}, {
		// The same simulation under the forced interpreter: the pair
		// records the compiled engine's speedup and pins, in the record
		// itself, that both engines do identical simulated work.
		name: "machine-hot-loop-interp",
		run: oneRun(func(ctx context.Context) (*mtsim.Result, error) {
			a := mtsim.MustNewApp("sieve", mtsim.Quick)
			cfg := mtsim.Config{Procs: 64, Threads: 4, Model: mtsim.SwitchOnLoad, Latency: 200,
				DispatchMode: mtsim.DispatchInterpreted}
			return mtsim.RunContext(ctx, cfg, a.Raw, a.Init)
		}),
	}}
	for _, name := range mtsim.AllAppNames() {
		name := name
		bs = append(bs, benchmark{
			name: "app-" + name,
			run: oneRun(func(ctx context.Context) (*mtsim.Result, error) {
				a := mtsim.MustNewApp(name, mtsim.Quick)
				cfg := mtsim.Config{Procs: 8, Threads: 4, Model: mtsim.ExplicitSwitch, Latency: 200}
				return a.RunContext(ctx, cfg)
			}),
		})
	}
	bs = append(bs, benchmark{
		// A dependent-load kernel on the routed mesh: times the link-queue
		// contention path and pins its simulated work in the record.
		name: "topology-gather-mesh",
		run: oneRun(func(ctx context.Context) (*mtsim.Result, error) {
			a := mtsim.MustNewApp("gather", mtsim.Quick)
			cfg := mtsim.Config{Procs: 16, Threads: 4, Model: mtsim.SwitchOnLoad, Latency: 200}
			cfg.Topology = mtsim.TopologyConfig{Kind: mtsim.TopoMesh}
			return a.RunContext(ctx, cfg)
		}),
	})
	bs = append(bs, benchmark{
		name: "checkpointed-run",
		run: oneRun(func(ctx context.Context) (*mtsim.Result, error) {
			// The checkpoint/restore tax: same simulation as the app
			// benchmarks but pausing and serializing the full machine
			// state every 100k cycles into a discarded sink.
			sess := mtsim.NewSession()
			a := mtsim.MustNewApp("sieve", mtsim.Quick)
			cfg := mtsim.Config{Procs: 8, Threads: 4, Model: mtsim.ExplicitSwitch, Latency: 200}
			return sess.RunCheckpointedContext(ctx, a, cfg, mtsim.CheckpointConfig{
				Interval:     100_000,
				OnCheckpoint: func(int64, []byte) error { return nil },
			})
		}),
	})
	bs = append(bs, benchmark{
		name: "session-batch",
		run: func(ctx context.Context) (int64, int64, error) {
			// A fresh session each iteration so nothing is memoized
			// between operations; Workers pinned so the simulated work
			// is the same at any GOMAXPROCS.
			sess := mtsim.NewSession()
			sess.Workers = 4
			jobs := make([]mtsim.RunJob, 0, len(mtsim.AllAppNames()))
			for _, name := range mtsim.AllAppNames() {
				jobs = append(jobs, mtsim.RunJob{
					App: mtsim.MustNewApp(name, mtsim.Quick),
					Cfg: mtsim.Config{Procs: 4, Threads: 2, Model: mtsim.SwitchOnUse, Latency: 200},
				})
			}
			results, err := sess.RunBatchContext(ctx, jobs)
			if err != nil {
				return 0, 0, err
			}
			var instrs, cycles int64
			for _, r := range results {
				instrs += r.Instrs
				cycles += r.Cycles
			}
			return instrs, cycles, nil
		},
	})
	return bs
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "compare" {
		os.Exit(compareMain(os.Args[2:]))
	}
	out := flag.String("out", "", "write the benchmark record as JSON to this file")
	baseline := flag.String("baseline", "", "baseline BENCH_*.json to compare against")
	check := flag.Bool("check", false, "with -baseline: exit 1 on determinism mismatch or timing regression")
	tolerance := flag.Float64("tolerance", 0.10, "with -check: maximum allowed ns/op regression (0.10 = 10%)")
	timing := flag.Bool("timing", true, "measure wall time (disable for cross-machine CI checks)")
	benchtime := flag.Duration("benchtime", 500*time.Millisecond, "minimum measuring time per benchmark")
	label := flag.String("label", "", "free-form label stored in the record")
	benchFilter := flag.String("bench", "", "run only benchmarks whose name matches this regexp")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the benchmark runs to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the runs to this file")
	flag.Parse()

	if *check && *baseline == "" {
		fatalf("-check needs -baseline")
	}
	if *tolerance <= 0 {
		fatalf("-tolerance %v: must be positive", *tolerance)
	}
	var filter *regexp.Regexp
	if *benchFilter != "" {
		var err error
		if filter, err = regexp.Compile(*benchFilter); err != nil {
			fatalf("-bench %q: %v", *benchFilter, err)
		}
	}
	if *cpuprofile != "" {
		pf, err := os.Create(*cpuprofile)
		if err != nil {
			fatalf("-cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			fatalf("-cpuprofile: %v", err)
		}
		defer pf.Close()
	}

	// An interrupted bench exits promptly with the in-flight simulation
	// canceled instead of finishing the whole suite.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	rec := Record{
		Schema: SchemaVersion,
		Label:  *label,
		Go:     runtime.Version(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		CPUs:   runtime.NumCPU(),
		Scale:  "quick",
		Timing: *timing,
	}
	for _, b := range suite() {
		if filter != nil && !filter.MatchString(b.name) {
			continue
		}
		res, err := measure(ctx, b, *timing, *benchtime)
		if err != nil {
			fatalf("%s: %v", b.name, err)
		}
		rec.Benchmarks = append(rec.Benchmarks, res)
		if *timing {
			fmt.Printf("%-24s %4d iters  %12d ns/op  %10d sim-instrs  %10d sim-cycles\n",
				res.Name, res.Iters, res.NsPerOp, res.SimInstr, res.SimCycle)
		} else {
			fmt.Printf("%-24s %10d sim-instrs  %10d sim-cycles\n",
				res.Name, res.SimInstr, res.SimCycle)
		}
	}
	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		mf, err := os.Create(*memprofile)
		if err != nil {
			fatalf("-memprofile: %v", err)
		}
		runtime.GC()
		if err := pprof.Lookup("heap").WriteTo(mf, 0); err != nil {
			fatalf("-memprofile: %v", err)
		}
		mf.Close()
	}

	if *out != "" {
		if err := writeRecord(*out, &rec); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("record written to %s\n", *out)
	}
	if *baseline != "" {
		base, err := readRecord(*baseline)
		if err != nil {
			fatalf("%v", err)
		}
		failures := compare(base, &rec, *tolerance)
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "bench: FAIL:", f)
		}
		if len(failures) > 0 {
			if *check {
				os.Exit(1)
			}
		} else {
			fmt.Printf("baseline %s: ok (%d benchmarks compared)\n", *baseline, len(base.Benchmarks))
		}
	}
}

// compareMain implements the `bench compare A.json B.json` subcommand:
// a side-by-side diff of two records. Simulated work is compared
// exactly (a mismatch is a simulator behavior change); wall time is
// reported as a speedup factor and only *enforced* — against the
// tolerance, exit 1 — when both records measured timing, since ns/op
// from different machines are not comparable.
func compareMain(args []string) int {
	fs := flag.NewFlagSet("bench compare", flag.ExitOnError)
	tolerance := fs.Float64("tolerance", 0.10, "maximum allowed ns/op regression (0.10 = 10%)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: bench compare [-tolerance F] BASE.json CURRENT.json")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	if *tolerance <= 0 {
		fatalf("-tolerance %v: must be positive", *tolerance)
	}
	base, err := readRecord(fs.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}
	cur, err := readRecord(fs.Arg(1))
	if err != nil {
		fatalf("%v", err)
	}
	byName := make(map[string]BenchResult, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		byName[b.Name] = b
	}
	timing := base.Timing && cur.Timing
	fmt.Printf("%-24s %-14s %14s %14s %9s\n", "benchmark", "sim-work", "base ns/op", "cur ns/op", "speedup")
	for _, c := range cur.Benchmarks {
		b, ok := byName[c.Name]
		if !ok {
			fmt.Printf("%-24s (not in %s)\n", c.Name, fs.Arg(0))
			continue
		}
		work := "identical"
		if c.SimInstr != b.SimInstr || c.SimCycle != b.SimCycle {
			work = "CHANGED"
		}
		if timing && b.NsPerOp > 0 && c.NsPerOp > 0 {
			fmt.Printf("%-24s %-14s %14d %14d %8.2fx\n",
				c.Name, work, b.NsPerOp, c.NsPerOp, float64(b.NsPerOp)/float64(c.NsPerOp))
		} else {
			fmt.Printf("%-24s %-14s %14s %14s %9s\n", c.Name, work, "-", "-", "-")
		}
	}
	failures := compare(base, cur, *tolerance)
	for _, f := range failures {
		fmt.Fprintln(os.Stderr, "bench: FAIL:", f)
	}
	if len(failures) > 0 {
		return 1
	}
	fmt.Printf("ok: %d benchmarks compared\n", len(cur.Benchmarks))
	return 0
}

// measure runs one benchmark: a first iteration captures the simulated
// work (deterministic, so one run suffices); with timing on, further
// iterations run until benchtime has elapsed.
func measure(ctx context.Context, b benchmark, timing bool, benchtime time.Duration) (BenchResult, error) {
	start := time.Now()
	instrs, cycles, err := b.run(ctx)
	if err != nil {
		return BenchResult{}, err
	}
	out := BenchResult{Name: b.name, Iters: 1, SimInstr: instrs, SimCycle: cycles}
	if !timing {
		return out, nil
	}
	elapsed := time.Since(start)
	for elapsed < benchtime && ctx.Err() == nil {
		if _, _, err := b.run(ctx); err != nil {
			return BenchResult{}, err
		}
		out.Iters++
		elapsed = time.Since(start)
	}
	out.NsPerOp = elapsed.Nanoseconds() / int64(out.Iters)
	return out, nil
}

// compare returns one message per violated contract between a baseline
// record and the current one. Simulated work must match exactly; wall
// time is only held to the tolerance when both records measured it.
func compare(base, cur *Record, tolerance float64) []string {
	byName := make(map[string]BenchResult, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		byName[b.Name] = b
	}
	var fails []string
	for _, c := range cur.Benchmarks {
		b, ok := byName[c.Name]
		if !ok {
			// New benchmarks are allowed: future PRs append to the suite.
			continue
		}
		if c.SimInstr != b.SimInstr || c.SimCycle != b.SimCycle {
			fails = append(fails, fmt.Sprintf(
				"%s: simulated work changed: instrs %d -> %d, cycles %d -> %d (the simulator is deterministic; this is a behavior change, not noise)",
				c.Name, b.SimInstr, c.SimInstr, b.SimCycle, c.SimCycle))
		}
		if base.Timing && cur.Timing && b.NsPerOp > 0 && c.NsPerOp > 0 {
			if ratio := float64(c.NsPerOp)/float64(b.NsPerOp) - 1; ratio > tolerance {
				fails = append(fails, fmt.Sprintf(
					"%s: ns/op regressed %.1f%% (%d -> %d, tolerance %.0f%%)",
					c.Name, 100*ratio, b.NsPerOp, c.NsPerOp, 100*tolerance))
			}
		}
	}
	for _, b := range base.Benchmarks {
		found := false
		for _, c := range cur.Benchmarks {
			if c.Name == b.Name {
				found = true
				break
			}
		}
		if !found {
			fails = append(fails, fmt.Sprintf("%s: present in baseline but not run", b.Name))
		}
	}
	return fails
}

func writeRecord(path string, rec *Record) error {
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func readRecord(path string) (*Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rec.Schema != SchemaVersion {
		return nil, fmt.Errorf("%s: schema %d, this binary reads %d", path, rec.Schema, SchemaVersion)
	}
	return &rec, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bench: "+format+"\n", args...)
	os.Exit(1)
}
