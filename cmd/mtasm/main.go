// Command mtasm assembles, disassembles, optimizes and runs .mt assembly
// files.
//
// Usage:
//
//	mtasm -dump -app sieve > sieve.mt     # disassemble a benchmark
//	mtasm sieve.mt                        # assemble + validate
//	mtasm -group sieve.mt                 # assemble, group, print
//	mtasm -run -procs 4 -threads 6 prog.mt
//
// Assembled programs run with zeroed shared memory (there is no host
// Init), so -run suits self-contained programs.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mtsim"
	"mtsim/internal/asm"
)

func main() {
	dump := flag.String("dump", "", "disassemble a benchmark application instead of reading a file")
	scaleName := flag.String("scale", "quick", "scale for -dump")
	group := flag.Bool("group", false, "apply the grouping optimizer and print the result")
	run := flag.Bool("run", false, "run the program after assembling")
	modelName := flag.String("model", "explicit-switch", "model for -run: "+strings.Join(mtsim.ModelNames(), ", "))
	procs := flag.Int("procs", 1, "processors for -run")
	threads := flag.Int("threads", 1, "threads per processor for -run")
	latency := flag.Int("latency", mtsim.DefaultLatency, "latency for -run")
	flag.Parse()

	if *dump != "" {
		scale, err := mtsim.ParseScale(*scaleName)
		if err != nil {
			fatal(err)
		}
		a, err := mtsim.NewApp(*dump, scale)
		if err != nil {
			fatal(err)
		}
		fmt.Print(asm.Format(a.Raw))
		return
	}

	if flag.NArg() != 1 {
		fatal(fmt.Errorf("usage: mtasm [flags] file.mt (or -dump <app>)"))
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	p, err := asm.Parse(f)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "mtasm: %s: %d instructions, %d shared cells, %d local cells\n",
		p.Name, len(p.Instrs), p.Shared.Size(), p.Local.Size())

	if *group {
		g, st, err := mtsim.Optimize(p)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "mtasm: grouped %d loads into %d switches (%.2f loads/switch)\n",
			st.SharedLoads, st.Switches, st.StaticGrouping())
		fmt.Print(asm.Format(g))
		p = g
	}

	if *run {
		model, err := mtsim.ParseModel(*modelName)
		if err != nil {
			fatal(err)
		}
		res, err := mtsim.Run(mtsim.Config{
			Procs: *procs, Threads: *threads, Model: model, Latency: *latency,
			CollectRunLengths: true,
		}, p, nil)
		if err != nil {
			fatal(err)
		}
		fmt.Print(res.Summary())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mtasm:", err)
	os.Exit(1)
}
