// Command mttrace runs a benchmark application with the shared-access
// tracer attached and prints the trace analysis: per-symbol access
// profiles, processor sharing, inter-access gaps and hot spots — the
// §3.1 pixie-style methodology behind the paper's characterization of
// its applications.
//
// Usage:
//
//	mttrace -app mp3d -procs 8 -threads 4
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mtsim"
	"mtsim/internal/machine"
	"mtsim/internal/trace"
)

func main() {
	appName := flag.String("app", "mp3d", "application: "+strings.Join(mtsim.AppNames(), ", "))
	modelName := flag.String("model", "explicit-switch", "model: "+strings.Join(mtsim.ModelNames(), ", "))
	scaleName := flag.String("scale", "quick", "problem scale")
	procs := flag.Int("procs", 8, "processors")
	threads := flag.Int("threads", 4, "threads per processor")
	latency := flag.Int("latency", mtsim.DefaultLatency, "round-trip latency")
	lineCells := flag.Int("line", 4, "locality aggregation line size in cells")
	flag.Parse()

	model, err := mtsim.ParseModel(*modelName)
	if err != nil {
		fatal(err)
	}
	scale, err := mtsim.ParseScale(*scaleName)
	if err != nil {
		fatal(err)
	}
	a, err := mtsim.NewApp(*appName, scale)
	if err != nil {
		fatal(err)
	}
	p, err := a.ProgramFor(model)
	if err != nil {
		fatal(err)
	}

	col := trace.New(p, *lineCells)
	cfg := mtsim.Config{Procs: *procs, Threads: *threads, Model: model, Latency: *latency}
	res, err := machine.RunTraced(cfg, p, a.Init, a.Check, col.Collect)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("%s under %s: %d cycles, utilization %.3f (result verified)\n\n",
		a.Name, model, res.Cycles, res.Utilization())
	fmt.Print(col.Report())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mttrace:", err)
	os.Exit(1)
}
