// Command mtsim runs one benchmark application on the simulated
// multithreaded multiprocessor and prints the measurements.
//
// Usage:
//
//	mtsim -app sor -model explicit-switch -procs 8 -threads 6
//
// The run is verified against a host-computed reference; efficiency is
// reported against the ideal single-processor baseline, as in the paper.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"mtsim"
)

func main() {
	appName := flag.String("app", "sor", "application: "+strings.Join(mtsim.AllAppNames(), ", "))
	modelName := flag.String("model", "explicit-switch", "model: "+strings.Join(mtsim.ModelNames(), ", "))
	scaleName := flag.String("scale", "quick", "problem scale: quick, medium or full")
	procs := flag.Int("procs", 8, "processors")
	threads := flag.Int("threads", 6, "threads per processor (multithreading level)")
	latency := flag.Int("latency", mtsim.DefaultLatency, "network round-trip latency in cycles")
	switchCost := flag.Int("switchcost", 0, "cycles lost per context switch (0 = model default)")
	runLimit := flag.Int("runlimit", 0, "conditional-switch forced-switch interval (0 = default)")
	window := flag.Bool("window", false, "enable the §5.2 inter-block grouping window (explicit-switch)")
	runs := flag.Bool("runlengths", true, "collect the run-length histogram")
	traffic := flag.Bool("traffic", false, "print the per-message-type network breakdown")
	topoName := flag.String("topology", "constant", "interconnect topology: "+strings.Join(mtsim.TopologyNames(), ", "))
	faults := flag.Float64("faults", 0, "fault injection rate in [0,1): replies dropped/delayed at this rate, duplicated at half")
	jitter := flag.Int("jitter", 0, "deterministic per-access latency jitter in cycles (must stay below -latency)")
	seed := flag.Uint64("seed", 1, "seed for the deterministic fault stream")
	metricsOut := flag.String("metrics", "", "collect cycle-accounting metrics and write the run's JSON record to this file (\"-\" for stdout)")
	flag.Parse()

	model, err := mtsim.ParseModel(*modelName)
	if err != nil {
		fatal(err)
	}
	scale, err := mtsim.ParseScale(*scaleName)
	if err != nil {
		fatal(err)
	}
	a, err := mtsim.NewApp(*appName, scale)
	if err != nil {
		fatal(err)
	}

	cfg := mtsim.Config{
		Procs: *procs, Threads: *threads, Model: model,
		Latency: *latency, SwitchCost: *switchCost, RunLimit: *runLimit,
		GroupWindow: *window, CollectRunLengths: *runs,
		LatencyJitter:  *jitter,
		CollectMetrics: *metricsOut != "",
	}
	topo, err := mtsim.ParseTopology(*topoName)
	if err != nil {
		fatal(err)
	}
	cfg.Topology = mtsim.TopologyConfig{Kind: topo}
	if *faults > 0 {
		cfg.Faults = mtsim.FaultConfig{
			Enabled: true, Seed: *seed,
			DropRate: *faults, DupRate: *faults / 2, DelayRate: *faults,
		}
	}
	// One validation path for every front end: the same Config.Validate
	// the library and the mtsimd request decoder run, called before any
	// simulation starts so a bad flag fails in microseconds.
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}

	// Ctrl-C cancels the run cooperatively instead of killing mid-print.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	res, err := a.RunContext(ctx, cfg)
	if err != nil {
		fatal(err)
	}

	sess := mtsim.NewSession()
	base, err := sess.BaselineContext(ctx, a)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("%s (%s): %s\n", a.Name, a.Problem, a.Description)
	fmt.Print(res.Summary())
	fmt.Printf("baseline (ideal 1 proc) = %d cycles\n", base)
	fmt.Printf("speedup = %.2f, efficiency = %.3f\n", res.Speedup(base), res.Efficiency(base))
	if *traffic {
		fmt.Print(res.TrafficBreakdown())
	}
	fmt.Println("result verified against host reference: ok")
	if *metricsOut != "" {
		if err := writeRunMetrics(*metricsOut, res); err != nil {
			fatal(err)
		}
	}
}

// writeRunMetrics emits the run's cycle-accounting record as
// stable-schema JSON (the -metrics flag).
func writeRunMetrics(path string, res *mtsim.Result) error {
	if path == "-" {
		return mtsim.WriteMetricsJSON(os.Stdout, res.Metrics)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := mtsim.WriteMetricsJSON(f, res.Metrics); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("metrics written to %s\n", path)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mtsim:", err)
	os.Exit(1)
}
