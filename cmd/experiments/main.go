// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-scale quick|medium|full] [-latency N] [-maxmt N] [-j N]
//	            [-faults R] [-jitter N] [-seed N] [id ...]
//
// With no ids, every experiment runs in paper order. Ids are the paper
// artifact names: figure1..figure4, table1..table8.
//
// -j sets the worker-goroutine count (default GOMAXPROCS; 1 runs
// sequentially). Independent experiments render into per-experiment
// buffers and simulations deduplicate through the session memo, so the
// output is byte-identical at every -j setting.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mtsim"
)

func main() {
	scaleFlag := flag.String("scale", "quick", "problem scale: quick, medium or full")
	latency := flag.Int("latency", mtsim.DefaultLatency, "network round-trip latency in cycles")
	maxMT := flag.Int("maxmt", 0, "cap on multithreading-level searches (0 = scale default)")
	jobs := flag.Int("j", 0, "worker goroutines for simulations and rendering (0 = GOMAXPROCS)")
	ablations := flag.Bool("ablations", false, "also run the ablation/extension experiments")
	report := flag.String("report", "", "write an EXPERIMENTS.md-style markdown report to this file")
	list := flag.Bool("list", false, "list experiment ids and exit")
	faults := flag.Float64("faults", 0.05, "harshest fault rate the robustness ablation sweeps to, in [0,1)")
	jitter := flag.Int("jitter", 0, "latency jitter in cycles for the robustness ablation (0 = half the latency)")
	seed := flag.Uint64("seed", 1, "seed for the robustness ablation's deterministic fault streams")
	kernels := flag.String("kernels", "", "comma-separated irregular kernels for the topology ablation (default: all of "+strings.Join(mtsim.IrregularAppNames(), ",")+")")
	topologies := flag.String("topologies", "", "comma-separated topologies for the topology ablation (default: "+strings.Join(mtsim.TopologyNames(), ",")+")")
	metricsOut := flag.String("metrics", "", "collect cycle-accounting metrics on every simulation and write the aggregate JSON to this file (\"-\" for stdout)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and expvar (engine counters) on this address, e.g. localhost:6060")
	flag.Parse()

	if *jobs < 0 {
		fatalf("-j %d: the worker count cannot be negative", *jobs)
	}

	if *list {
		for _, e := range mtsim.Experiments() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
		for _, e := range mtsim.AblationExperiments() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
		return
	}

	scale, err := mtsim.ParseScale(*scaleFlag)
	if err != nil {
		fatal(err)
	}

	// Ctrl-C / SIGTERM cancels the sweep cooperatively: in-flight
	// simulations abort and the command exits instead of finishing a
	// full-scale render nobody is waiting for.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	opts := []mtsim.ExpOption{
		mtsim.WithScale(scale),
		mtsim.WithLatency(*latency),
		mtsim.WithFaults(*faults, *jitter, *seed),
		mtsim.WithMetrics(*metricsOut != ""),
		mtsim.WithContext(ctx),
	}
	if *maxMT > 0 {
		opts = append(opts, mtsim.WithMaxMT(*maxMT))
	}
	if *kernels != "" {
		opts = append(opts, mtsim.WithKernels(strings.Split(*kernels, ",")...))
	}
	if *topologies != "" {
		opts = append(opts, mtsim.WithTopologies(strings.Split(*topologies, ",")...))
	}
	if *jobs > 0 {
		opts = append(opts, mtsim.WithJobs(*jobs))
	}
	o := mtsim.NewExp(os.Stdout, opts...)
	// The same option validation the mtsimd experiments endpoint runs.
	if err := o.Validate(); err != nil {
		fatal(err)
	}

	if *pprofAddr != "" {
		servePprof(*pprofAddr, o.Sess)
	}

	if *report != "" {
		f, err := os.Create(*report)
		if err != nil {
			fatal(err)
		}
		if err := mtsim.WriteExperimentReport(o, f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("report written to %s\n", *report)
		emitMetrics(*metricsOut, o)
		return
	}

	var selected []*mtsim.Experiment
	if flag.NArg() == 0 {
		selected = mtsim.Experiments()
		if *ablations {
			selected = append(selected, mtsim.AblationExperiments()...)
		}
	} else {
		for _, id := range flag.Args() {
			e, err := mtsim.ExperimentByID(id)
			if err != nil {
				fatal(err)
			}
			selected = append(selected, e)
		}
	}

	fmt.Printf("# Boothe & Ranade (ISCA 1992) reproduction — %s scale, latency %d\n", scale, o.Latency)
	fmt.Printf("# every simulated run is verified against a host-computed reference\n\n")
	outs, times, err := mtsim.RenderExperiments(o, selected)
	if err != nil {
		fatal(err)
	}
	for i, e := range selected {
		fmt.Printf("== %s: %s\n", e.ID, e.Title)
		fmt.Printf("   paper: %s\n\n", e.Paper)
		os.Stdout.WriteString(outs[i])
		fmt.Printf("   [%s regenerated in %v]\n\n", e.ID, times[i].Round(time.Millisecond))
	}
	emitMetrics(*metricsOut, o)
}

// emitMetrics writes the session's aggregate cycle accounting (the
// -metrics flag): the stable-schema JSON to path plus a rendered
// summary on stdout. A no-op when the flag was not given, keeping the
// default output byte-identical.
func emitMetrics(path string, o *mtsim.ExpOptions) {
	if path == "" {
		return
	}
	bm := o.SessionMetrics()
	if err := mtsim.WriteMetricsFile(path, bm); err != nil {
		fatal(err)
	}
	if path != "-" {
		mtsim.WriteMetricsSummary(os.Stdout, bm)
		fmt.Printf("metrics written to %s\n", path)
	}
}

// servePprof exposes net/http/pprof plus expvar engine counters on
// addr, for profiling long experiment sweeps.
func servePprof(addr string, sess *mtsim.Session) {
	expvar.Publish("mtsim.sims", expvar.Func(func() any { return sess.SimCount() }))
	expvar.Publish("mtsim.memo_hits", expvar.Func(func() any { return sess.MemoHits() }))
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: pprof:", err)
		}
	}()
	fmt.Printf("# pprof/expvar listening on http://%s/debug/pprof\n", addr)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "experiments: "+format+"\n", args...)
	os.Exit(1)
}
