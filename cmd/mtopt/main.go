// Command mtopt shows the paper's grouping optimization (§5.1) applied to
// a benchmark application: the raw assembly, the reorganized assembly
// with explicit Switch instructions, and the grouping statistics.
//
// Usage:
//
//	mtopt -app sor            # print before/after assembly
//	mtopt -app sor -stats     # print only the statistics
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"mtsim"
	"mtsim/internal/asm"
)

func main() {
	appName := flag.String("app", "sor", "application: "+strings.Join(mtsim.AppNames(), ", "))
	scaleName := flag.String("scale", "quick", "problem scale: quick, medium or full")
	statsOnly := flag.Bool("stats", false, "print only grouping statistics")
	flag.Parse()

	scale, err := mtsim.ParseScale(*scaleName)
	if err != nil {
		fatal(err)
	}
	a, err := mtsim.NewApp(*appName, scale)
	if err != nil {
		fatal(err)
	}
	grouped, st, err := a.Grouped()
	if err != nil {
		fatal(err)
	}

	if !*statsOnly {
		fmt.Printf("; ===== %s: raw program (%d instructions) =====\n", a.Name, len(a.Raw.Instrs))
		fmt.Print(asm.Format(a.Raw))
		fmt.Printf("\n; ===== %s: grouped program (%d instructions) =====\n", a.Name, len(grouped.Instrs))
		fmt.Print(asm.Format(grouped))
		fmt.Println()
	}

	fmt.Printf("grouping statistics for %s:\n", a.Name)
	fmt.Printf("  basic blocks:        %d\n", st.Blocks)
	fmt.Printf("  shared loads:        %d\n", st.SharedLoads)
	fmt.Printf("  switches inserted:   %d\n", st.Switches)
	fmt.Printf("  static grouping:     %.2f loads/switch\n", st.StaticGrouping())
	sizes := make([]int, 0, len(st.GroupSizes))
	for s := range st.GroupSizes {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)
	for _, s := range sizes {
		fmt.Printf("  groups of %d loads:   %d\n", s, st.GroupSizes[s])
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mtopt:", err)
	os.Exit(1)
}
