// Command mtcc compiles MTC kernel-language source (.mtc) for the
// simulated multiprocessor: the paper's compiler story end to end.
//
// Usage:
//
//	mtcc prog.mtc                 # compile, print assembly
//	mtcc -group prog.mtc          # compile + §5.1 grouping, print assembly
//	mtcc -run -procs 4 -threads 6 -model explicit-switch prog.mtc
//
// With -run, grouped code is used automatically for the explicit-switch
// and conditional-switch models. Shared memory starts zeroed.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mtsim"
	"mtsim/internal/asm"
	"mtsim/internal/mtc"
)

func main() {
	group := flag.Bool("group", false, "apply the grouping optimizer before printing")
	run := flag.Bool("run", false, "run the compiled program")
	modelName := flag.String("model", "explicit-switch", "model for -run: "+strings.Join(mtsim.ModelNames(), ", "))
	procs := flag.Int("procs", 1, "processors for -run")
	threads := flag.Int("threads", 1, "threads per processor for -run")
	latency := flag.Int("latency", mtsim.DefaultLatency, "latency for -run")
	flag.Parse()

	if flag.NArg() != 1 {
		fatal(fmt.Errorf("usage: mtcc [flags] file.mtc"))
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	name := strings.TrimSuffix(filepath.Base(path), ".mtc")
	p, err := mtc.Compile(name, string(src))
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "mtcc: %s: %d instructions, %d shared cells, %d local cells\n",
		p.Name, len(p.Instrs), p.Shared.Size(), p.Local.Size())

	model, err := mtsim.ParseModel(*modelName)
	if err != nil {
		fatal(err)
	}
	if *group || (*run && model.UsesGrouping()) {
		g, st, err := mtsim.Optimize(p)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "mtcc: grouped %d loads into %d switches (%.2f loads/switch)\n",
			st.SharedLoads, st.Switches, st.StaticGrouping())
		p = g
	}

	if !*run {
		fmt.Print(asm.Format(p))
		return
	}
	res, err := mtsim.Run(mtsim.Config{
		Procs: *procs, Threads: *threads, Model: model, Latency: *latency,
		CollectRunLengths: true,
	}, p, nil)
	if err != nil {
		fatal(err)
	}
	fmt.Print(res.Summary())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mtcc:", err)
	os.Exit(1)
}
