// Command gengolden regenerates the golden assembly files in
// internal/apps/testdata (run after an intended kernel or optimizer
// change; the golden tests compare against these).
package main

import (
	"fmt"
	"os"

	"mtsim/internal/app"
	"mtsim/internal/apps"
	"mtsim/internal/asm"
)

func main() {
	for _, a := range apps.All(app.Quick) {
		if err := os.WriteFile("internal/apps/testdata/"+a.Name+".mt", []byte(asm.Format(a.Raw)), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		g, _, err := a.Grouped()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile("internal/apps/testdata/"+a.Name+".grouped.mt", []byte(asm.Format(g)), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(a.Name)
	}
}
