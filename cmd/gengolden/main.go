// Command gengolden regenerates the repository's golden files (run
// from the repo root after an intended behavior change; the golden
// tests compare against these):
//
//   - internal/apps/testdata/*.mt — kernel and optimizer assembly;
//   - internal/exp/testdata/*.golden.* — deterministic experiment
//     renderings and the metrics JSON schema pins (see exp.GoldenSet).
package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"syscall"

	"mtsim/internal/app"
	"mtsim/internal/apps"
	"mtsim/internal/asm"
	"mtsim/internal/exp"
)

func main() {
	// An interrupted regeneration aborts its simulations and exits
	// before writing any experiment golden, rather than half-updating
	// testdata.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	for _, a := range append(apps.All(app.Quick), apps.AllIrregular(app.Quick)...) {
		write("internal/apps/testdata/"+a.Name+".mt", []byte(asm.Format(a.Raw)))
		g, _, err := a.Grouped()
		if err != nil {
			fatal(err)
		}
		write("internal/apps/testdata/"+a.Name+".grouped.mt", []byte(asm.Format(g)))
		fmt.Println(a.Name)
	}
	set, err := exp.GoldenSetContext(ctx)
	if err != nil {
		fatal(err)
	}
	names := make([]string, 0, len(set))
	for name := range set {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		write("internal/exp/testdata/"+name, set[name])
		fmt.Println(name)
	}
}

func write(path string, data []byte) {
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
