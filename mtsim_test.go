package mtsim_test

import (
	"fmt"
	"strings"
	"testing"

	"mtsim"
)

func TestPublicAPISmoke(t *testing.T) {
	if got := len(mtsim.AppNames()); got != 7 {
		t.Fatalf("AppNames = %d entries", got)
	}
	if got := len(mtsim.ModelNames()); got != 8 {
		t.Fatalf("ModelNames = %d entries", got)
	}
	if got := len(mtsim.Experiments()); got != 12 {
		t.Fatalf("Experiments = %d entries", got)
	}
	m, err := mtsim.ParseModel("conditional-switch")
	if err != nil || m != mtsim.ConditionalSwitch {
		t.Fatalf("ParseModel: %v, %v", m, err)
	}
	if _, err := mtsim.ParseModel("bogus"); err == nil {
		t.Error("bogus model accepted")
	}
	s, err := mtsim.ParseScale("medium")
	if err != nil || s != mtsim.Medium {
		t.Fatalf("ParseScale: %v, %v", s, err)
	}
}

func TestRunBenchmarkAppViaFacade(t *testing.T) {
	a := mtsim.MustNewApp("sieve", mtsim.Quick)
	res, err := a.Run(mtsim.Config{
		Procs: 4, Threads: 8, Model: mtsim.ExplicitSwitch, Latency: mtsim.DefaultLatency,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 || res.Utilization() <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	if !strings.Contains(res.Summary(), "explicit-switch") {
		t.Error("summary missing model name")
	}
}

func TestCustomProgramViaFacade(t *testing.T) {
	b := mtsim.NewProgram("inc")
	cnt := b.Shared("cnt", 1)
	bar := mtsim.AllocBarrier(b, "bar")
	b.Li(4, cnt.Base)
	b.Li(5, 1)
	b.Faa(6, 4, 0, 5)
	b.Li(9, bar.Addr(0))
	mtsim.Barrier(b, 9, 0, 20, 10, 11)
	// After the barrier thread 0 doubles the count.
	b.Bnez(mtsim.RegTid, "end")
	b.LwS(7, 4, 0)
	b.Add(7, 7, 7)
	b.SwS(7, 4, 0)
	b.Label("end")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	grouped, st, err := mtsim.Optimize(p)
	if err != nil {
		t.Fatal(err)
	}
	if st.Switches == 0 {
		t.Error("optimizer inserted nothing")
	}
	for _, prg := range []*mtsim.Program{p, grouped} {
		_, err := mtsim.RunChecked(mtsim.Config{
			Procs: 3, Threads: 2, Model: mtsim.ExplicitSwitch, Latency: 40,
		}, prg, nil, func(sh *mtsim.Shared) error {
			if got := sh.WordAt("cnt", 0); got != 12 {
				return fmt.Errorf("cnt = %d, want 12", got)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestSessionFacade(t *testing.T) {
	sess := mtsim.NewSession()
	a := mtsim.MustNewApp("blkmat", mtsim.Quick)
	base, err := sess.Baseline(a)
	if err != nil {
		t.Fatal(err)
	}
	eff, err := sess.Efficiency(a, mtsim.Config{Procs: 2, Threads: 2, Model: mtsim.ExplicitSwitch})
	if err != nil {
		t.Fatal(err)
	}
	if base <= 0 || eff <= 0 || eff > 1.2 {
		t.Fatalf("base=%d eff=%v", base, eff)
	}
}

func TestExperimentLookupFacade(t *testing.T) {
	e, err := mtsim.ExperimentByID("figure3")
	if err != nil {
		t.Fatal(err)
	}
	if e.ID != "figure3" {
		t.Errorf("id = %s", e.ID)
	}
}
