// Quickstart: the paper's headline result in one page.
//
// The sor solver accesses shared memory in bursts of five back-to-back
// loads, so under the simple switch-on-load model most run-lengths are
// one or two cycles and no reasonable number of threads hides a 200-cycle
// memory latency. The grouping optimizer (explicit-switch model) issues
// the five loads together and waits for them with a single context
// switch; efficiency then climbs rapidly with the multithreading level.
package main

import (
	"fmt"
	"log"

	"mtsim"
)

func main() {
	a := mtsim.MustNewApp("sor", mtsim.Quick)
	sess := mtsim.NewSession()
	base, err := sess.Baseline(a)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %s (%s)\n", a.Name, a.Description, a.Problem)
	fmt.Printf("ideal single-processor baseline: %d cycles\n\n", base)

	const procs = 4
	fmt.Printf("efficiency at %d processors, 200-cycle latency:\n\n", procs)
	fmt.Printf("%-10s %14s %16s\n", "threads", "switch-on-load", "explicit-switch")
	for _, threads := range []int{1, 2, 4, 6, 8, 10} {
		var eff [2]float64
		for i, model := range []mtsim.Model{mtsim.SwitchOnLoad, mtsim.ExplicitSwitch} {
			res, err := a.Run(mtsim.Config{
				Procs: procs, Threads: threads, Model: model,
				Latency: mtsim.DefaultLatency,
			})
			if err != nil {
				log.Fatal(err)
			}
			eff[i] = res.Efficiency(base)
		}
		fmt.Printf("%-10d %14.2f %16.2f\n", threads, eff[0], eff[1])
	}

	// The mechanism behind the difference: context-switch counts.
	rl, err := a.Run(mtsim.Config{Procs: procs, Threads: 6, Model: mtsim.SwitchOnLoad})
	if err != nil {
		log.Fatal(err)
	}
	re, err := a.Run(mtsim.Config{Procs: procs, Threads: 6, Model: mtsim.ExplicitSwitch})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncontext switches at 6 threads: %d (switch-on-load) vs %d (explicit-switch)\n",
		rl.TakenSwitches, re.TakenSwitches)
	fmt.Printf("grouping eliminated %.0f%% of context switches (%.2f loads per switch)\n",
		100*(1-float64(re.TakenSwitches)/float64(rl.TakenSwitches)), re.GroupingFactor())
	fmt.Println("\nevery run above was verified against a host-computed reference")
}
