// Mtclang: the paper's compiler story end to end, from source code.
//
// A five-point stencil kernel is written in the MTC kernel language with
// static row distribution and a barrier per sweep — the same structure as
// the sor benchmark. The example compiles it (naive code generation puts
// a shared load exactly where the source reads the grid), lets the §5.1
// optimizer group the loads, verifies both variants against a host
// reference, and measures the multithreading payoff.
package main

import (
	"fmt"
	"log"

	"mtsim"
	"mtsim/internal/mtc"
)

const n = 48    // interior size
const s = n + 2 // stride
const iters = 3

var src = fmt.Sprintf(`
// Red-black relaxation over a %dx%d interior with a fixed boundary.
shared float grid[%d];
barrierdecl done;

func main() {
    var rows = (%d + nthreads - 1) / nthreads;
    var lo = 1 + tid * rows;
    var hi = lo + rows;
    if (hi > %d) { hi = %d; }

    var it; var color; var i; var j;
    for (it = 0; it < %d; it = it + 1) {
        for (color = 0; color < 2; color = color + 1) {
            for (i = lo; i < hi; i = i + 1) {
                for (j = 1 + ((i + 1 + color) & 1); j <= %d; j = j + 2) {
                    var p = i * %d + j;
                    grid[p] = (grid[p-%d] + grid[p+%d] + grid[p-1] + grid[p+1]) * 0.25;
                }
            }
            barrier(done);
        }
    }
}
`, n, n, s*s, n, n+1, n+1, iters, n, s, s, s)

func main() {
	raw, err := mtc.Compile("stencil", src)
	if err != nil {
		log.Fatal(err)
	}
	grouped, st, err := mtsim.Optimize(raw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %d instructions; optimizer formed %v load groups (%.2f loads/switch)\n\n",
		len(raw.Instrs), st.GroupSizes, st.StaticGrouping())

	// Host reference with identical operation order.
	initial := make([]float64, s*s)
	for i := 0; i < s; i++ {
		for j := 0; j < s; j++ {
			if i == 0 || j == 0 || i == s-1 || j == s-1 {
				initial[i*s+j] = float64((i*7 + j*13) % 19)
			}
		}
	}
	ref := append([]float64(nil), initial...)
	for it := 0; it < iters; it++ {
		for color := 0; color < 2; color++ {
			for i := 1; i <= n; i++ {
				for j := 1 + ((i + 1 + color) & 1); j <= n; j += 2 {
					p := i*s + j
					ref[p] = (ref[p-s] + ref[p+s] + ref[p-1] + ref[p+1]) * 0.25
				}
			}
		}
	}
	init := func(sh *mtsim.Shared) {
		for i, v := range initial {
			sh.SetFloatAt("grid", int64(i), v)
		}
	}
	check := func(sh *mtsim.Shared) error {
		for i := int64(0); i < int64(s*s); i++ {
			if got := sh.FloatAt("grid", i); got != ref[i] {
				return fmt.Errorf("grid[%d] = %g, want %g", i, got, ref[i])
			}
		}
		return nil
	}

	fmt.Printf("%-10s %16s %18s\n", "threads", "switch-on-load", "explicit-switch")
	for _, threads := range []int{1, 2, 4, 8} {
		r1, err := mtsim.RunChecked(mtsim.Config{
			Procs: 4, Threads: threads, Model: mtsim.SwitchOnLoad, Latency: mtsim.DefaultLatency,
		}, raw, init, check)
		if err != nil {
			log.Fatal(err)
		}
		r2, err := mtsim.RunChecked(mtsim.Config{
			Procs: 4, Threads: threads, Model: mtsim.ExplicitSwitch, Latency: mtsim.DefaultLatency,
		}, grouped, init, check)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10d %9d cyc %13d cyc   (%.2fx)\n",
			threads, r1.Cycles, r2.Cycles, float64(r1.Cycles)/float64(r2.Cycles))
	}
	fmt.Println("\nboth variants verified against the host reference on every run")
}
