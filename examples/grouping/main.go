// Grouping: the paper's compiler optimization on a custom kernel.
//
// A small dot-product-style kernel loads two operands per iteration. The
// optimizer hoists the independent shared loads together and inserts one
// explicit Switch per group (§5.1), halving the context switches. The
// example prints the transformed assembly and measures the effect.
package main

import (
	"fmt"
	"log"

	"mtsim"
	"mtsim/internal/asm"
)

const n = 4000

func build() (*mtsim.Program, func(*mtsim.Shared), func(*mtsim.Shared) error) {
	b := mtsim.NewProgram("dotprod")
	xs := b.Shared("xs", n)
	ys := b.Shared("ys", n)
	out := b.Shared("out", 64) // one slot per thread
	ctr := b.Shared("ctr", 1)

	// Each thread claims chunks and accumulates x[i]*y[i] privately,
	// then stores its partial sum into its own slot.
	b.Li(4, xs.Base)
	b.Li(5, ys.Base)
	b.Li(6, 0) // accumulator
	b.Label("chunk")
	b.Li(14, ctr.Base)
	mtsim.SelfSchedule(b, 14, 0, 64, 7, 15)
	b.Li(14, n)
	b.Bge(7, 14, "done")
	b.Addi(11, 7, 64)
	b.Blt(11, 14, "clamped")
	b.Mov(11, 14) // last chunk ends at n
	b.Label("clamped")
	b.Label("loop")
	b.Add(8, 4, 7)
	b.Add(9, 5, 7)
	b.LwS(12, 8, 0) // x[i]   — independent loads the optimizer groups
	b.LwS(13, 9, 0) // y[i]
	b.Mul(12, 12, 13)
	b.Add(6, 6, 12)
	b.Addi(7, 7, 1)
	b.Blt(7, 11, "loop")
	b.J("chunk")
	b.Label("done")
	b.Li(14, out.Base)
	b.Add(14, 14, mtsim.RegTid)
	b.SwS(6, 14, 0)
	b.Halt()

	p, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	var want int64
	init := func(sh *mtsim.Shared) {
		for i := int64(0); i < n; i++ {
			sh.SetWordAt("xs", i, i%17)
			sh.SetWordAt("ys", i, i%13)
		}
	}
	for i := int64(0); i < n; i++ {
		want += (i % 17) * (i % 13)
	}
	check := func(sh *mtsim.Shared) error {
		var got int64
		for t := int64(0); t < 64; t++ {
			got += sh.WordAt("out", t)
		}
		if got != want {
			return fmt.Errorf("dot product = %d, want %d", got, want)
		}
		return nil
	}
	return p, init, check
}

func main() {
	raw, init, check := build()
	grouped, st, err := mtsim.Optimize(raw)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("grouped inner section (note the loads hoisted above one switch):")
	fmt.Println(asm.Format(grouped))
	fmt.Printf("static grouping: %.2f loads per switch (groups: %v)\n\n",
		st.StaticGrouping(), st.GroupSizes)

	for threads := 2; threads <= 16; threads *= 2 {
		r1, err := mtsim.RunChecked(mtsim.Config{
			Procs: 4, Threads: threads, Model: mtsim.SwitchOnLoad,
		}, raw, init, check)
		if err != nil {
			log.Fatal(err)
		}
		r2, err := mtsim.RunChecked(mtsim.Config{
			Procs: 4, Threads: threads, Model: mtsim.ExplicitSwitch,
		}, grouped, init, check)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("threads=%-3d switch-on-load: %7d cycles (util %.2f)   explicit-switch: %7d cycles (util %.2f)\n",
			threads, r1.Cycles, r1.Utilization(), r2.Cycles, r2.Utilization())
	}
}
