// Customapp: writing your own parallel program against the public API.
//
// The program computes a histogram of a shared data array: threads claim
// chunks with Fetch-and-Add self-scheduling, tally privately in local
// memory, and merge their tallies into the shared histogram under a
// ticket lock. It demonstrates the Builder assembly API, shared/local
// memory layout, the synchronization macros, host-side Init/Check, and
// running one program under several multithreading models.
package main

import (
	"fmt"
	"log"

	"mtsim"
)

const (
	nData   = 20000
	nBins   = 16
	chunkSz = 128
)

func buildHistogram() (*mtsim.Program, func(*mtsim.Shared), func(*mtsim.Shared) error) {
	b := mtsim.NewProgram("histogram")
	data := b.Shared("data", nData)
	hist := b.Shared("hist", nBins)
	ctr := b.Shared("ctr", 1)
	lk := mtsim.AllocLock(b, "lock")
	lhist := b.Local("lhist", nBins)

	// r4 data base, r5 n, r7 chunk start, r8 pointer, r9 value,
	// r11 chunk end, r13 loop index, r14/r15 scratch.
	b.Li(4, data.Base)
	b.Li(5, nData)

	b.Label("chunk")
	b.Li(8, ctr.Base)
	mtsim.SelfSchedule(b, 8, 0, chunkSz, 7, 14)
	b.Bge(7, 5, "merge")
	b.Addi(11, 7, chunkSz)
	b.Blt(11, 5, "eok")
	b.Mov(11, 5)
	b.Label("eok")
	b.Add(8, 4, 7)
	b.Mov(13, 7)
	b.Label("tally")
	b.Bge(13, 11, "chunk")
	b.LwS(9, 8, 0)          // value
	b.Andi(9, 9, nBins-1)   // bin
	b.Lw(14, 9, lhist.Base) // local tally
	b.Addi(14, 14, 1)
	b.Sw(14, 9, lhist.Base)
	b.Addi(8, 8, 1)
	b.Addi(13, 13, 1)
	b.J("tally")

	// Merge the private tally into the shared histogram under the lock.
	b.Label("merge")
	b.Li(9, lk.Base)
	mtsim.LockAcquire(b, 9, 0, 14, 15)
	b.Li(13, 0)
	b.Li(8, hist.Base)
	b.Label("mloop")
	b.Lw(14, 13, lhist.Base)
	b.LwS(15, 8, 0) // safe under the lock
	b.Add(15, 15, 14)
	b.SwS(15, 8, 0)
	b.Addi(8, 8, 1)
	b.Addi(13, 13, 1)
	b.Slti(14, 13, nBins)
	b.Bnez(14, "mloop")
	mtsim.LockRelease(b, 9, 0, 14, 15)
	b.Halt()

	p, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Host side: deterministic data and the expected histogram.
	values := make([]int64, nData)
	want := make([]int64, nBins)
	seed := int64(12345)
	for i := range values {
		seed = seed*6364136223846793005 + 1442695040888963407
		values[i] = (seed >> 33) & 0x7fffffff
		want[values[i]&(nBins-1)]++
	}
	init := func(sh *mtsim.Shared) {
		for i, v := range values {
			sh.SetWordAt("data", int64(i), v)
		}
	}
	check := func(sh *mtsim.Shared) error {
		for i := int64(0); i < nBins; i++ {
			if got := sh.WordAt("hist", i); got != want[i] {
				return fmt.Errorf("hist[%d] = %d, want %d", i, got, want[i])
			}
		}
		return nil
	}
	return p, init, check
}

func main() {
	raw, init, check := buildHistogram()
	grouped, st, err := mtsim.Optimize(raw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("histogram: %d instructions, optimizer grouped %d loads into %d switches\n\n",
		len(raw.Instrs), st.SharedLoads, st.Switches)

	cfgBase := mtsim.Config{Procs: 4, Threads: 4, Latency: mtsim.DefaultLatency}
	for _, model := range []mtsim.Model{
		mtsim.SwitchOnLoad, mtsim.SwitchOnUse, mtsim.ExplicitSwitch, mtsim.ConditionalSwitch,
	} {
		cfg := cfgBase
		cfg.Model = model
		p := raw
		if model.UsesGrouping() {
			p = grouped
		}
		res, err := mtsim.RunChecked(cfg, p, init, check)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s cycles=%-8d utilization=%.3f switches=%d\n",
			model, res.Cycles, res.Utilization(), res.TakenSwitches)
	}
	fmt.Println("\nall runs produced the correct histogram")
}
