// Modelcompare: the full Figure 1 taxonomy on one application.
//
// Runs a chosen benchmark under every context-switch model at the same
// machine shape and prints a comparison: cycles, efficiency, context
// switches, cache behaviour and network bandwidth. This is the view a
// machine architect would use to pick a model.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"mtsim"
)

func main() {
	appName := flag.String("app", "mp3d", "application: "+strings.Join(mtsim.AppNames(), ", "))
	procs := flag.Int("procs", 8, "processors")
	threads := flag.Int("threads", 6, "threads per processor")
	flag.Parse()

	a, err := mtsim.NewApp(*appName, mtsim.Quick)
	if err != nil {
		log.Fatal(err)
	}
	sess := mtsim.NewSession()
	base, err := sess.Baseline(a)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s (%s) at %d procs x %d threads, latency %d\n\n",
		a.Name, a.Problem, *procs, *threads, mtsim.DefaultLatency)
	fmt.Printf("%-20s %10s %6s %10s %9s %8s %9s\n",
		"model", "cycles", "eff", "switches", "hit-rate", "b/cyc", "overhead")

	for _, name := range mtsim.ModelNames() {
		model, err := mtsim.ParseModel(name)
		if err != nil {
			log.Fatal(err)
		}
		res, err := a.Run(mtsim.Config{
			Procs: *procs, Threads: *threads, Model: model,
			Latency: mtsim.DefaultLatency,
		})
		if err != nil {
			log.Fatal(err)
		}
		hit := "     -"
		if model.UsesCache() {
			hit = fmt.Sprintf("%9.2f", res.CacheHitRate())
		}
		fmt.Printf("%-20s %10d %6.2f %10d %9s %8.2f %9d\n",
			name, res.Cycles, res.Efficiency(base), res.TakenSwitches,
			hit, res.BitsPerCycle(), res.SwitchOverhead)
	}

	fmt.Println("\nnotes:")
	fmt.Println("  - the ideal machine is the zero-latency upper bound")
	fmt.Println("  - grouped code (explicit/conditional switch) was produced by the optimizer")
	fmt.Println("  - switch-on-miss pays a pipeline-flush cost per switch (overhead column)")
	fmt.Println("  - every run is verified against a host-computed reference")
}
